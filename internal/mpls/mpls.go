// Package mpls implements a topology-driven (control-based) label-swapping
// baseline — MPLS / Tag-switching as sketched in §2 and §5.1 of the paper —
// and its combination with distributed IP lookup.
//
// Every router assigns a label to each prefix (FEC) in its forwarding
// table and distributes the bindings to its neighbors. A labeled packet is
// normally forwarded with a single label-table reference. The exception is
// an aggregation point (Figure 8): a router whose table holds prefixes
// extending the packet's FEC must perform a full IP lookup to pick the
// correct finer route and a new label.
//
// §5.1's observation is that the label *is* a clue — "each label in MPLS
// (control based) is associated with a clue ... the label can be used as an
// efficient indexing into the clues table, thus eliminating the hash
// function". In WithClues mode the aggregation-point lookup is therefore a
// restricted search below the FEC prefix instead of a full lookup.
package mpls

import (
	"fmt"

	"repro/internal/fib"
	"repro/internal/ip"
	"repro/internal/lookup"
	"repro/internal/mem"
	"repro/internal/routing"
	"repro/internal/trie"
)

// Mode selects plain MPLS or the §5.1 clue integration.
type Mode int

// Forwarding modes.
const (
	Plain Mode = iota
	WithClues
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Plain {
		return "MPLS"
	}
	return "MPLS+clues"
}

// NoLabel marks an unlabeled packet.
const NoLabel = -1

// binding is one entry of a router's incoming-label table.
type binding struct {
	fec ip.Prefix
	// aggregation reports whether this router's table has prefixes
	// extending the FEC — the Figure 8 case where label swapping alone is
	// not enough.
	aggregation bool
	// resume is the precomputed restricted search below the FEC (WithClues
	// mode): the label indexes straight into this clue state, no hashing.
	resume lookup.Resume
}

// LSR is one label-switching router.
type LSR struct {
	name      string
	table     *fib.Table
	trie      *trie.Trie
	engine    lookup.ClueEngine
	labels    []binding         // label (index) -> binding
	fecLabels map[ip.Prefix]int // own prefix -> label this router assigned
}

// Name returns the router name.
func (r *LSR) Name() string { return r.name }

// LabelFor returns the label this router assigned to a FEC prefix, or
// NoLabel.
func (r *LSR) LabelFor(p ip.Prefix) int {
	if l, ok := r.fecLabels[p]; ok {
		return l
	}
	return NoLabel
}

// AggregationPoints returns how many of this router's labels sit at
// aggregation points (need more than a swap).
func (r *LSR) AggregationPoints() int {
	n := 0
	for _, b := range r.labels {
		if b.aggregation {
			n++
		}
	}
	return n
}

// Network is a set of LSRs wired by their forwarding tables.
type Network struct {
	routers map[string]*LSR
	mode    Mode
}

// New builds the MPLS network: every router binds a label to each of its
// prefixes (topology/control-based assignment — no per-flow setup, like
// the clue scheme itself) and precomputes, per label, whether it is an
// aggregation point and, in WithClues mode, the restricted search state.
func New(tables map[string]*fib.Table, mode Mode) *Network {
	n := &Network{routers: make(map[string]*LSR, len(tables)), mode: mode}
	for name, tab := range tables {
		tr := tab.Trie()
		r := &LSR{
			name:      name,
			table:     tab,
			trie:      tr,
			engine:    lookup.NewPatricia(tr),
			fecLabels: make(map[ip.Prefix]int, tab.Len()),
		}
		for _, p := range tab.Prefixes() {
			label := len(r.labels)
			b := binding{fec: p}
			node := tr.Find(p)
			b.aggregation = tr.MarkedBelow(node)
			if b.aggregation && mode == WithClues {
				b.resume = r.engine.CompileResume(p, nil)
			}
			r.labels = append(r.labels, b)
			r.fecLabels[p] = label
		}
		n.routers[name] = r
	}
	return n
}

// Router returns a router by name, or nil.
func (n *Network) Router(name string) *LSR { return n.routers[name] }

// Hop records one router's processing of a packet.
type Hop struct {
	Router   string
	Refs     int
	FEC      ip.Prefix // the prefix the packet was forwarded by here
	LabelIn  int
	LabelOut int
	// FullLookup reports that a complete IP lookup ran here (ingress or a
	// plain-MPLS aggregation point).
	FullLookup bool
	NextHop    string
}

// Trace is a packet's path through the MPLS network.
type Trace struct {
	Dest      ip.Addr
	Hops      []Hop
	Delivered bool
}

// TotalRefs sums lookup/label-table work over the path.
func (t *Trace) TotalRefs() int {
	sum := 0
	for _, h := range t.Hops {
		sum += h.Refs
	}
	return sum
}

// FullLookups counts the hops that performed a complete IP lookup — the
// §5.1 comparison metric ("at points of aggregation our method works more
// efficiently since we use the clue, while MPLS/TAG-switching perform a
// complete standard IP-lookup").
func (t *Trace) FullLookups() int {
	n := 0
	for _, h := range t.Hops {
		if h.FullLookup {
			n++
		}
	}
	return n
}

const maxHops = 64

// Send injects a packet at src and label-switches it to delivery.
func (n *Network) Send(src string, dest ip.Addr) (*Trace, error) {
	cur, ok := n.routers[src]
	if !ok {
		return nil, fmt.Errorf("mpls: unknown source router %q", src)
	}
	tr := &Trace{Dest: dest}
	label := NoLabel
	for len(tr.Hops) < maxHops {
		var cnt mem.Counter
		hop := Hop{Router: cur.name, LabelIn: label}
		var fec ip.Prefix
		var hopID int
		var okFec bool
		switch {
		case label == NoLabel:
			// Ingress (or a hop that lost its label): full IP lookup.
			fec, hopID, okFec = cur.engine.Lookup(dest, &cnt)
			hop.FullLookup = true
		default:
			// One reference reads the label table.
			cnt.Add(1)
			b := cur.labels[label]
			fec, okFec = b.fec, true
			hopID = -1
			if b.aggregation {
				// Aggregation point: the label's FEC may hide a finer route.
				switch n.mode {
				case Plain:
					fec, hopID, okFec = cur.engine.Lookup(dest, &cnt)
					hop.FullLookup = true
				case WithClues:
					// §5.1: the label indexes the clue state directly; only
					// the restricted search below the FEC runs.
					if p, v, okk := b.resume.Lookup(dest, &cnt); okk {
						fec, hopID = p, v
					} else {
						hopID = -1 // keep the label's own FEC
					}
				}
			}
			if hopID < 0 {
				// The FEC's own route.
				v, okGet := cur.trie.Get(fec)
				if !okGet {
					return tr, fmt.Errorf("mpls: label %d at %s bound to unknown prefix %v", label, cur.name, b.fec)
				}
				hopID = v
			}
		}
		hop.Refs = cnt.Count()
		if !okFec {
			hop.LabelOut = NoLabel
			tr.Hops = append(tr.Hops, hop)
			return tr, nil // dropped
		}
		hop.FEC = fec
		next := cur.table.HopName(hopID)
		hop.NextHop = next
		if next == routing.LocalHop {
			hop.LabelOut = NoLabel
			tr.Hops = append(tr.Hops, hop)
			tr.Delivered = true
			return tr, nil
		}
		nxt, ok := n.routers[next]
		if !ok {
			return tr, fmt.Errorf("mpls: router %q forwards to unknown router %q", cur.name, next)
		}
		// Downstream label for the FEC; if the neighbor has no binding the
		// packet continues unlabeled and the neighbor does a full lookup.
		hop.LabelOut = nxt.LabelFor(fec)
		tr.Hops = append(tr.Hops, hop)
		label = hop.LabelOut
		cur = nxt
	}
	return tr, fmt.Errorf("mpls: packet for %v exceeded %d hops (routing loop?)", dest, maxHops)
}
