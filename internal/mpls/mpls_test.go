package mpls

import (
	"math/rand"
	"testing"

	"repro/internal/ip"
	"repro/internal/routing"
)

// figure8Network reproduces the aggregation scenario of Figure 8: a chain
// R0..R4 where a /16 aggregate is global but the /24s inside it are only
// visible near the destination, so a mid-path router is an aggregation
// point for the /16 FEC.
func figure8Network(t *testing.T, mode Mode) (*Network, []string, ip.Addr, ip.Addr) {
	t.Helper()
	top := routing.NewTopology()
	names := routing.Chain(top, "R", 5)
	destA := ip.MustParseAddr("10.1.1.7") // matches 10.1.1.0/24
	destB := ip.MustParseAddr("10.1.2.9") // matches 10.1.2.0/24
	// /16 global; the /24s visible within 2 hops of R4 (so R2..R4 know
	// them and R2 is the aggregation point for packets labeled /16 by R1).
	if err := top.Originate(names[4], ip.MustParsePrefix("10.1.0.0/16")); err != nil {
		t.Fatal(err)
	}
	if err := top.OriginateScoped(names[4], ip.MustParsePrefix("10.1.1.0/24"), 2); err != nil {
		t.Fatal(err)
	}
	if err := top.OriginateScoped(names[4], ip.MustParsePrefix("10.1.2.0/24"), 2); err != nil {
		t.Fatal(err)
	}
	// Background routes.
	rng := rand.New(rand.NewSource(3))
	for i, name := range names {
		for k := 0; k < 10; k++ {
			base := ip.AddrFrom32(uint32(40+i*11+k) << 24)
			if err := top.Originate(name, ip.PrefixFrom(base, 8+rng.Intn(9))); err != nil {
				t.Fatal(err)
			}
		}
	}
	return New(top.ComputeTables(), mode), names, destA, destB
}

func TestPlainMPLSDelivery(t *testing.T) {
	n, names, destA, destB := figure8Network(t, Plain)
	for _, dest := range []ip.Addr{destA, destB} {
		tr, err := n.Send(names[0], dest)
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Delivered || len(tr.Hops) != 5 {
			t.Fatalf("dest %v: delivered=%v hops=%d", dest, tr.Delivered, len(tr.Hops))
		}
		// Ingress always does a full lookup.
		if !tr.Hops[0].FullLookup {
			t.Error("ingress must do a full lookup")
		}
		// The final hop must forward by the /24, not the aggregate.
		last := tr.Hops[len(tr.Hops)-1]
		if last.FEC.Len() != 24 {
			t.Errorf("dest %v: final FEC %v, want a /24", dest, last.FEC)
		}
	}
}

func TestAggregationPointForcesFullLookupInPlainMode(t *testing.T) {
	n, names, destA, _ := figure8Network(t, Plain)
	tr, err := n.Send(names[0], destA)
	if err != nil {
		t.Fatal(err)
	}
	// Some mid-path hop (not the ingress) must have done a full lookup:
	// the aggregation point where /24s become visible.
	mid := 0
	for _, h := range tr.Hops[1:] {
		if h.FullLookup {
			mid++
		}
	}
	if mid == 0 {
		t.Error("plain MPLS: no aggregation-point full lookup observed")
	}
	if tr.FullLookups() != mid+1 {
		t.Errorf("FullLookups = %d, want %d", tr.FullLookups(), mid+1)
	}
}

func TestCluesEliminateAggregationFullLookups(t *testing.T) {
	plain, namesP, destA, destB := figure8Network(t, Plain)
	clued, namesC, _, _ := figure8Network(t, WithClues)
	for _, dest := range []ip.Addr{destA, destB} {
		trP, err := plain.Send(namesP[0], dest)
		if err != nil {
			t.Fatal(err)
		}
		trC, err := clued.Send(namesC[0], dest)
		if err != nil {
			t.Fatal(err)
		}
		if !trC.Delivered {
			t.Fatal("clued MPLS failed to deliver")
		}
		// Same path, same final FEC.
		if len(trP.Hops) != len(trC.Hops) {
			t.Fatalf("paths differ: %d vs %d hops", len(trP.Hops), len(trC.Hops))
		}
		for i := range trP.Hops {
			if trP.Hops[i].FEC != trC.Hops[i].FEC {
				t.Errorf("hop %d FEC differs: %v vs %v", i, trP.Hops[i].FEC, trC.Hops[i].FEC)
			}
		}
		// §5.1: only the ingress does a full lookup with clues.
		if trC.FullLookups() != 1 {
			t.Errorf("clued full lookups = %d, want 1", trC.FullLookups())
		}
		if trC.TotalRefs() >= trP.TotalRefs() {
			t.Errorf("clued total %d not below plain %d", trC.TotalRefs(), trP.TotalRefs())
		}
	}
}

func TestPureSwapCostsOneReference(t *testing.T) {
	n, names, destA, _ := figure8Network(t, Plain)
	tr, err := n.Send(names[0], destA)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range tr.Hops {
		if i == 0 || h.FullLookup || h.NextHop == routing.LocalHop {
			continue
		}
		if h.Refs != 1 {
			t.Errorf("pure swap at hop %d cost %d, want 1", i, h.Refs)
		}
	}
}

func TestLabelContinuity(t *testing.T) {
	n, names, destA, _ := figure8Network(t, WithClues)
	tr, err := n.Send(names[0], destA)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(tr.Hops); i++ {
		if tr.Hops[i].LabelIn != tr.Hops[i-1].LabelOut {
			t.Errorf("hop %d label-in %d != previous label-out %d", i, tr.Hops[i].LabelIn, tr.Hops[i-1].LabelOut)
		}
	}
}

func TestAggregationPointCount(t *testing.T) {
	n, names, _, _ := figure8Network(t, Plain)
	// R2 (first router that knows the /24s) has the /16 label at an
	// aggregation point.
	agg := 0
	for _, name := range names {
		agg += n.Router(name).AggregationPoints()
	}
	if agg == 0 {
		t.Error("no aggregation points detected in Figure-8 network")
	}
}

// When the downstream router has no binding for the resolved FEC (the
// finer prefix is scoped out of its table), the packet continues
// unlabeled and the next router performs a full lookup — the path must
// still deliver correctly in both modes.
func TestMissingBindingContinuesUnlabeled(t *testing.T) {
	for _, mode := range []Mode{Plain, WithClues} {
		top := routing.NewTopology()
		names := routing.Chain(top, "M", 6)
		// The /16 is global; the /24 exists ONLY at M2 (radius 0 from a
		// router in the middle of the path... originate at M2 itself).
		if err := top.Originate(names[5], ip.MustParsePrefix("10.1.0.0/16")); err != nil {
			t.Fatal(err)
		}
		// M2 knows a finer route for part of the /16 toward the same
		// destination edge; M3 does not carry it.
		if err := top.OriginateScoped(names[5], ip.MustParsePrefix("10.1.1.0/24"), 3); err != nil {
			t.Fatal(err)
		}
		tables := top.ComputeTables()
		n := New(tables, mode)
		dest := ip.MustParseAddr("10.1.1.9")
		tr, err := n.Send(names[0], dest)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !tr.Delivered {
			t.Fatalf("%v: not delivered", mode)
		}
		// Find whether any mid-path hop emitted NoLabel and the next hop
		// recovered with a full lookup.
		sawUnlabeled := false
		for i, h := range tr.Hops[:len(tr.Hops)-1] {
			if h.LabelOut == NoLabel {
				sawUnlabeled = true
				if !tr.Hops[i+1].FullLookup {
					t.Fatalf("%v: hop after unlabeled handoff did not do a full lookup", mode)
				}
			}
		}
		_ = sawUnlabeled // scenario-dependent; correctness asserted above
		// The final hop must use the finest prefix its table has.
		last := tr.Hops[len(tr.Hops)-1]
		wantFEC, _, _ := tables[last.Router].Trie().Lookup(dest, nil)
		if last.FEC != wantFEC {
			t.Fatalf("%v: final FEC %v, want %v", mode, last.FEC, wantFEC)
		}
	}
}

func TestLabelForUnknownPrefix(t *testing.T) {
	n, names, _, _ := figure8Network(t, Plain)
	if n.Router(names[0]).LabelFor(ip.MustParsePrefix("203.0.113.0/24")) != NoLabel {
		t.Error("unknown prefix should have no label")
	}
}

func TestSendErrors(t *testing.T) {
	n, names, _, _ := figure8Network(t, Plain)
	if _, err := n.Send("nope", ip.MustParseAddr("10.1.1.1")); err == nil {
		t.Error("unknown source should fail")
	}
	// Unroutable destination is dropped, not an error.
	tr, err := n.Send(names[0], ip.MustParseAddr("203.0.113.1"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Delivered {
		t.Error("unroutable packet delivered")
	}
}

func TestModeString(t *testing.T) {
	if Plain.String() != "MPLS" || WithClues.String() != "MPLS+clues" {
		t.Error("Mode.String wrong")
	}
}
