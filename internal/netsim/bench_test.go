package netsim

import (
	"math/rand"
	"testing"

	"repro/internal/ip"
	"repro/internal/routing"
)

// benchNetwork is figure1Network without the *testing.T plumbing, shared
// by the Send benchmarks (the satellite-1 before/after measurement: the
// per-packet lazy-table mutex vs. pre-built tables) and the Drive scaling
// benchmarks.
func benchNetwork(chainLen int) (*Network, []string, ip.Addr) {
	top := routing.NewTopology()
	names := routing.Chain(top, "r", chainLen)
	host := ip.MustParseAddr("204.17.33.40")
	if err := routing.NestedOrigination(top, names[chainLen-1], host,
		[]int{8, 12, 16, 20, 24, 28}, []int{-1, chainLen, chainLen * 3 / 4, chainLen / 2, chainLen / 3, 2}); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i, name := range names {
		for k := 0; k < 20; k++ {
			base := ip.AddrFrom32(uint32(20+i*7+k) << 24)
			if err := top.Originate(name, ip.PrefixFrom(base, 8+rng.Intn(17))); err != nil {
				panic(err)
			}
		}
	}
	return New(top.ComputeTables()), names, host
}

// benchDests is a warm all-delivered workload within the host /24, so
// every benchmarked Send follows the full chain.
func benchDests(host ip.Addr, n int) []ip.Addr {
	dests := make([]ip.Addr, n)
	for i := range dests {
		dests[i] = ip.AddrFrom32(host.Uint32()&0xFFFFFF00 | uint32(i%64))
	}
	return dests
}

// BenchmarkNetsimSend measures one warm end-to-end Send through an
// 8-router chain — the satellite-1 microbenchmark. Before pre-built
// tables, every hop paid a mutex lock/unlock plus a map probe under it
// to reach its clue table; after, the table read is a plain map access
// on an immutable map.
func BenchmarkNetsimSend(b *testing.B) {
	for _, fast := range []bool{false, true} {
		name := "interpreted"
		if fast {
			name = "fastpath"
		}
		b.Run(name, func(b *testing.B) {
			n, names, host := benchNetwork(8)
			n.SetFastPath(fast)
			dests := benchDests(host, 64)
			for _, d := range dests { // warm the clue tables
				if _, err := n.Send(names[0], d); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := n.Send(names[0], dests[i%len(dests)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNetsimDrive measures the sharded pipeline driver end to end
// at several worker counts over a warm workload (ns per packet, whole
// chain traversal included).
func BenchmarkNetsimDrive(b *testing.B) {
	n, names, host := benchNetwork(8)
	n.SetFastPath(true)
	dests := benchDests(host, 64)
	for _, d := range dests {
		if _, err := n.Send(names[0], d); err != nil {
			b.Fatal(err)
		}
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "workers=1", 2: "workers=2", 4: "workers=4"}[workers], func(b *testing.B) {
			flows := make([]Flow, b.N)
			for i := range flows {
				flows[i] = Flow{Src: names[0], Dest: dests[i%len(dests)]}
			}
			b.ReportAllocs()
			b.ResetTimer()
			res := n.Drive(flows, workers)
			b.StopTimer()
			if res.Errors != 0 || res.Sent != b.N {
				b.Fatalf("drive failed: %+v", res)
			}
		})
	}
}

// BenchmarkNetsimSendParallel runs warm Sends from many goroutines: the
// contention view of the same measurement. With the lazy-table mutex,
// every packet at every hop serialized on its router's lock; pre-built
// tables make the per-packet path lock-free all the way down.
func BenchmarkNetsimSendParallel(b *testing.B) {
	for _, fast := range []bool{false, true} {
		name := "interpreted"
		if fast {
			name = "fastpath"
		}
		b.Run(name, func(b *testing.B) {
			n, names, host := benchNetwork(8)
			n.SetFastPath(fast)
			dests := benchDests(host, 64)
			for _, d := range dests {
				if _, err := n.Send(names[0], d); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := n.Send(names[0], dests[i%len(dests)]); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}
