package netsim

import (
	"runtime"

	"repro/internal/ip"
	"repro/internal/pipeline"
)

// Flow is one packet injection for the parallel driver: a source router
// and a destination.
type Flow struct {
	Src  string
	Dest ip.Addr
}

// DriveResult aggregates what happened to a driven workload. Every
// field is a sum over the whole run; Sent = Delivered + NoRoute +
// FaultDropped + Errors.
type DriveResult struct {
	Sent         int
	Delivered    int
	NoRoute      int
	FaultDropped int
	Errors       int // Send returned an error (unknown router, hop-limit loop)
	Hops         int // total hops across all traces
	Refs         int // total memory references across all traces
	Err          error
}

// merge folds o into r, keeping the first error seen.
func (r *DriveResult) merge(o DriveResult) {
	r.Sent += o.Sent
	r.Delivered += o.Delivered
	r.NoRoute += o.NoRoute
	r.FaultDropped += o.FaultDropped
	r.Errors += o.Errors
	r.Hops += o.Hops
	r.Refs += o.Refs
	if r.Err == nil {
		r.Err = o.Err
	}
}

// record accounts one Send outcome.
func (r *DriveResult) record(tr *Trace, err error) {
	r.Sent++
	if err != nil {
		r.Errors++
		if r.Err == nil {
			r.Err = err
		}
		if tr == nil {
			return
		}
	}
	r.Hops += len(tr.Hops)
	r.Refs += tr.TotalRefs()
	switch {
	case err != nil:
	case tr.Delivered:
		r.Delivered++
	case tr.Drop == DropFault:
		r.FaultDropped++
	default:
		r.NoRoute++
	}
}

// driveWorker is one worker's private accumulator, padded so adjacent
// workers' counts never share a cache line: DriveResult is 72 bytes, so
// 56 more round the element to exactly two lines.
//
//cluevet:padded
type driveWorker struct {
	res DriveResult
	_   [56]byte
}

// Drive injects every flow through a sharded multi-worker pipeline and
// aggregates the outcomes. Flows are sharded by destination hash, so
// all packets to one destination traverse the network in slice order —
// the same per-flow order a serial Send loop produces, which keeps
// clue learning deterministic per flow. Routers process packets
// concurrently; tables (ConcurrentTable or RCU) and telemetry are
// already safe for parallel Send, so Drive with any worker count
// delivers the same per-trace outcomes as the serial loop.
//
// workers <= 0 selects GOMAXPROCS.
func (n *Network) Drive(flows []Flow, workers int) DriveResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	acc := make([]driveWorker, workers)
	e := pipeline.New(pipeline.Config{Workers: workers}, func(w int, batch []pipeline.Packet) {
		res := &acc[w].res
		for _, p := range batch {
			f := flows[p.Tag]
			tr, err := n.Send(f.Src, f.Dest)
			res.record(tr, err)
		}
	})
	for i, f := range flows {
		e.Push(pipeline.Packet{Dest: f.Dest, Tag: uint64(i)})
	}
	e.Drain()
	var total DriveResult
	for i := range acc {
		total.merge(acc[i].res)
	}
	return total
}

// SendMany drives one destination list from a single source — the
// common benchmark shape — through Drive.
func (n *Network) SendMany(src string, dests []ip.Addr, workers int) DriveResult {
	flows := make([]Flow, len(dests))
	for i, d := range dests {
		flows[i] = Flow{Src: src, Dest: d}
	}
	return n.Drive(flows, workers)
}
