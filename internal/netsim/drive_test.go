package netsim

import (
	"reflect"
	"testing"

	"repro/internal/ip"
)

// driveFlows builds a mixed workload over the figure-1 network: packets
// into the nested-origination /24 (the clue-rich path) interleaved with
// background destinations, plus a final flow from an unknown source so
// error accounting is exercised on both paths.
func driveFlows(names []string, host ip.Addr, n int) []Flow {
	flows := make([]Flow, 0, n+1)
	for i := 0; i < n; i++ {
		var d ip.Addr
		if i%3 == 0 {
			d = ip.AddrFrom32(uint32(20+i%60)<<24 | uint32(i*2654435761)&0xFFFFFF)
		} else {
			d = ip.AddrFrom32(host.Uint32()&0xFFFFFF00 | uint32(i%64))
		}
		flows = append(flows, Flow{Src: names[i%2], Dest: d})
	}
	flows = append(flows, Flow{Src: "no-such-router", Dest: host})
	return flows
}

// serialDrive is the reference implementation: a plain Send loop in
// slice order, accounted identically to Drive.
func serialDrive(n *Network, flows []Flow) DriveResult {
	var res DriveResult
	for _, f := range flows {
		tr, err := n.Send(f.Src, f.Dest)
		res.record(tr, err)
	}
	return res
}

// TestDriveMatchesSerial pins the parallel driver to the serial Send
// loop, interpreted and fastpath:
//
//   - cold, workers=1: one worker drains in push order, so the run is
//     packet-for-packet serial — every field including Refs must match;
//   - cold, workers=4: interleaving across flows changes when shared
//     clue entries get learned, so work may differ, but routing never
//     does — Sent/Delivered/NoRoute/Errors/Hops must match;
//   - warmed, workers=4: with learning quiesced every packet's cost is
//     order-independent — full equality again, including per-router
//     outcome telemetry.
func TestDriveMatchesSerial(t *testing.T) {
	for _, fast := range []bool{false, true} {
		name := "interpreted"
		if fast {
			name = "fastpath"
		}
		t.Run(name, func(t *testing.T) {
			sn, names, host := figure1Network(t, 6)
			sn.SetFastPath(fast)
			flows := driveFlows(names, host, 300)

			want := serialDrive(sn, flows)
			if want.Sent != len(flows) || want.Errors != 1 || want.Delivered == 0 || want.NoRoute == 0 {
				t.Fatalf("serial reference not exercising all paths: %+v", want)
			}

			t.Run("cold-1worker", func(t *testing.T) {
				pn, _, _ := figure1Network(t, 6)
				pn.SetFastPath(fast)
				got := pn.Drive(flows, 1)
				if got.Sent != want.Sent || got.Delivered != want.Delivered ||
					got.NoRoute != want.NoRoute || got.FaultDropped != want.FaultDropped ||
					got.Errors != want.Errors || got.Hops != want.Hops || got.Refs != want.Refs {
					t.Fatalf("1-worker drive diverged from serial:\nserial %+v\ndrive  %+v", want, got)
				}
			})

			t.Run("cold-4workers", func(t *testing.T) {
				pn, _, _ := figure1Network(t, 6)
				pn.SetFastPath(fast)
				got := pn.Drive(flows, 4)
				if got.Sent != want.Sent || got.Delivered != want.Delivered ||
					got.NoRoute != want.NoRoute || got.FaultDropped != want.FaultDropped ||
					got.Errors != want.Errors || got.Hops != want.Hops {
					t.Fatalf("4-worker drive routed differently:\nserial %+v\ndrive  %+v", want, got)
				}
			})

			t.Run("warm-4workers", func(t *testing.T) {
				// Warm both networks with one identical serial pass, then
				// measure: costs are now order-independent, so the parallel
				// run must reproduce the serial accounting exactly.
				s2, _, _ := figure1Network(t, 6)
				s2.SetFastPath(fast)
				serialDrive(s2, flows)
				s2.ResetStats()
				wantWarm := serialDrive(s2, flows)

				p2, _, _ := figure1Network(t, 6)
				p2.SetFastPath(fast)
				serialDrive(p2, flows)
				p2.ResetStats()
				gotWarm := p2.Drive(flows, 4)

				// Err values are distinct error instances; compare the rest.
				wantWarm.Err, gotWarm.Err = nil, nil
				if wantWarm != gotWarm {
					t.Fatalf("warmed drive diverged from serial:\nserial %+v\ndrive  %+v", wantWarm, gotWarm)
				}
				for name := range s2.routers {
					so := s2.Router(name).Outcomes()
					po := p2.Router(name).Outcomes()
					if !reflect.DeepEqual(so, po) {
						t.Fatalf("router %s telemetry diverged:\nserial %v\ndrive  %v", name, so, po)
					}
				}
			})
		})
	}
}

// TestSendManyMatchesDrive pins the convenience wrapper to Drive.
func TestSendManyMatchesDrive(t *testing.T) {
	n, names, host := figure1Network(t, 4)
	var dests []ip.Addr
	for i := 0; i < 64; i++ {
		dests = append(dests, ip.AddrFrom32(host.Uint32()&0xFFFFFF00|uint32(i)))
	}
	// Warm so the two runs are order-independent.
	for _, d := range dests {
		if _, err := n.Send(names[0], d); err != nil {
			t.Fatal(err)
		}
	}
	got := n.SendMany(names[0], dests, 4)
	if got.Sent != len(dests) || got.Delivered != len(dests) || got.Errors != 0 {
		t.Fatalf("SendMany over a delivered workload: %+v", got)
	}

	flows := make([]Flow, len(dests))
	for i, d := range dests {
		flows[i] = Flow{Src: names[0], Dest: d}
	}
	want := n.Drive(flows, 4)
	got2 := n.SendMany(names[0], dests, 4)
	want.Err, got2.Err = nil, nil
	if want != got2 {
		t.Fatalf("SendMany != Drive on a warmed workload:\nDrive    %+v\nSendMany %+v", want, got2)
	}
}

// TestDriveLearnedTablesConverge pins that cold parallel driving learns
// the same clue entries as cold serial driving: learning is set-
// convergent regardless of interleaving.
func TestDriveLearnedTablesConverge(t *testing.T) {
	sn, names, host := figure1Network(t, 6)
	sn.SetFastPath(true)
	flows := driveFlows(names, host, 300)
	serialDrive(sn, flows)

	pn, _, _ := figure1Network(t, 6)
	pn.SetFastPath(true)
	pn.Drive(flows, 4)

	for name, sr := range sn.routers {
		pr := pn.Router(name)
		for up, srcu := range sr.fastTables {
			if got, want := pr.fastTables[up].Len(), srcu.Len(); got != want {
				t.Fatalf("router %s upstream %q: serial table has %d entries, parallel %d",
					name, up, want, got)
			}
		}
	}
}

// TestDriveOutcomeSum sanity-checks the accounting identity Drive
// documents: Sent = Delivered + NoRoute + FaultDropped + Errors.
func TestDriveOutcomeSum(t *testing.T) {
	n, names, host := figure1Network(t, 4)
	flows := driveFlows(names, host, 150)
	res := n.Drive(flows, 3)
	if res.Sent != res.Delivered+res.NoRoute+res.FaultDropped+res.Errors {
		t.Fatalf("outcome sum broken: %+v", res)
	}
	if res.Err == nil {
		t.Fatal("expected the unknown-source error to surface in Err")
	}
}
