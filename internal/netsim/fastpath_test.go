package netsim

import (
	"math/rand"
	"testing"

	"repro/internal/ip"
)

// TestFastPathMatchesInterpreted is the system-level differential test:
// two identical networks, one forwarding through interpreted core tables
// and one through compiled fastpath snapshots, must produce identical
// traces — router by router, hop by hop, reference count by reference
// count — across learning warm-up, steady state, legacy routers and
// sender verification.
func TestFastPathMatchesInterpreted(t *testing.T) {
	for _, tc := range []struct {
		name   string
		legacy bool
		verify bool
	}{
		{"plain", false, false},
		{"legacy-hop", true, false},
		{"verify", false, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			slow, names, host := figure1Network(t, 8)
			fast, _, _ := figure1Network(t, 8) // deterministic: same tables
			fast.SetFastPath(true)
			if tc.legacy {
				slow.Router(names[3]).SetParticipates(false)
				fast.Router(names[3]).SetParticipates(false)
			}
			if tc.verify {
				slow.SetVerify(true)
				fast.SetVerify(true)
			}
			rng := rand.New(rand.NewSource(77))
			dests := []ip.Addr{host}
			for i := 0; i < 300; i++ {
				dests = append(dests, ip.AddrFrom32(uint32(20+rng.Intn(60))<<24|rng.Uint32()&0xFFFFFF))
			}
			// Two passes: the first exercises learning (misses patched into
			// snapshots via RCU.Learn vs. learned inline by core), the
			// second the warm steady state.
			for pass := 0; pass < 2; pass++ {
				for _, d := range dests {
					trS, errS := slow.Send(names[0], d)
					trF, errF := fast.Send(names[0], d)
					if (errS == nil) != (errF == nil) {
						t.Fatalf("pass %d dest %v: errors diverged: %v vs %v", pass, d, errS, errF)
					}
					if errS != nil {
						continue
					}
					if trS.Delivered != trF.Delivered || trS.Drop != trF.Drop || len(trS.Hops) != len(trF.Hops) {
						t.Fatalf("pass %d dest %v: traces diverged: %+v vs %+v", pass, d, trS, trF)
					}
					for i := range trS.Hops {
						if trS.Hops[i] != trF.Hops[i] {
							t.Fatalf("pass %d dest %v hop %d: interpreted %+v fastpath %+v",
								pass, d, i, trS.Hops[i], trF.Hops[i])
						}
					}
				}
			}
			// The accumulated per-router load must agree too.
			ss, fs := slow.Stats(), fast.Stats()
			for name, s := range ss {
				if f := fs[name]; s != f {
					t.Errorf("router %s stats diverged: interpreted %+v fastpath %+v", name, s, f)
				}
			}
		})
	}
}

// TestSetFastPathResets pins the contract that flipping the switch
// discards learned tables (either direction) and rebuilds fresh ones in
// the new representation only — tables are pre-built eagerly, so Send
// never creates (or locks) anything on the packet path.
func TestSetFastPathResets(t *testing.T) {
	n, names, host := figure1Network(t, 4)
	if _, err := n.Send(names[0], host); err != nil {
		t.Fatal(err)
	}
	r := n.Router(names[1])
	learned := 0
	for _, tab := range r.clueTables {
		learned += tab.Learned()
	}
	if learned == 0 {
		t.Fatal("expected a learned interpreted table")
	}
	n.SetFastPath(true)
	if len(r.fastTables) == 0 {
		t.Fatal("fastpath tables must be pre-built at the switch")
	}
	if len(r.clueTables) != 0 {
		t.Fatal("fastpath mode must not keep interpreted tables")
	}
	for _, rcu := range r.fastTables {
		if rcu.Learned() != 0 {
			t.Fatal("SetFastPath must discard learned state")
		}
	}
	if _, err := n.Send(names[0], host); err != nil {
		t.Fatal(err)
	}
	learned = 0
	for _, rcu := range r.fastTables {
		learned += rcu.Learned()
	}
	if learned == 0 {
		t.Fatal("expected the compiled tables to learn from traffic")
	}
}
