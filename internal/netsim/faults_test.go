package netsim

import (
	"testing"

	"repro/internal/ip"
)

// scriptedFault is a deterministic LinkFault for tests: it perturbs or
// drops according to per-call scripts keyed by hop count.
type scriptedFault struct {
	calls   int
	dropAt  int           // 1-based call index to drop at (0 = never)
	rewrite func(int) int // clue rewrite (nil = identity)
	log     []struct{ F, T string }
}

func (s *scriptedFault) Apply(from, to string, dest ip.Addr, clue int) (int, bool) {
	s.calls++
	s.log = append(s.log, struct{ F, T string }{from, to})
	if s.dropAt != 0 && s.calls == s.dropAt {
		return clue, true
	}
	if s.rewrite != nil {
		return s.rewrite(clue), false
	}
	return clue, false
}

// TestDropReasonFault: a transport fault on the wire produces DropFault,
// attributed to the sending router's egress, and the trace ends there.
func TestDropReasonFault(t *testing.T) {
	n, names, host := figure1Network(t, 5)
	sf := &scriptedFault{dropAt: 2} // lose the packet on the 2nd link
	n.SetLinkFault(sf)
	tr, err := n.Send(names[0], host)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Delivered {
		t.Fatal("dropped packet reported delivered")
	}
	if tr.Drop != DropFault {
		t.Fatalf("Drop = %v, want fault", tr.Drop)
	}
	if len(tr.Hops) != 2 {
		t.Fatalf("hops = %d, want 2 (lost after the second router)", len(tr.Hops))
	}
	st := n.Stats()[names[1]]
	if st.FaultDrops != 1 || st.NoRouteDrops != 0 {
		t.Errorf("stats at %s: FaultDrops=%d NoRouteDrops=%d, want 1/0", names[1], st.FaultDrops, st.NoRouteDrops)
	}
}

// TestDropReasonNoRoute: a destination nobody originates produces
// DropNoRoute at the first router, distinguished from a fault drop.
func TestDropReasonNoRoute(t *testing.T) {
	n, names, _ := figure1Network(t, 5)
	tr, err := n.Send(names[0], ip.MustParseAddr("1.2.3.4"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Delivered || tr.Drop != DropNoRoute {
		t.Fatalf("Delivered=%v Drop=%v, want undelivered/no-route", tr.Delivered, tr.Drop)
	}
	st := n.Stats()[names[0]]
	if st.NoRouteDrops != 1 || st.FaultDrops != 0 {
		t.Errorf("stats: NoRouteDrops=%d FaultDrops=%d, want 1/0", st.NoRouteDrops, st.FaultDrops)
	}
	if tr2, _ := n.Send(names[0], ip.MustParseAddr("204.17.33.40")); tr2.Drop != DropNone || !tr2.Delivered {
		t.Errorf("clean delivery: Drop=%v Delivered=%v", tr2.Drop, tr2.Delivered)
	}
}

// TestFaultedClueStatsAndCorrectness: corrupting every clue on the wire
// must not change where packets are delivered (the §3.4 invariant — a
// clue is advisory), and the perturbed packets' extra work is tracked in
// the Faulted stats dimension.
func TestFaultedClueStatsAndCorrectness(t *testing.T) {
	n, names, host := figure1Network(t, 6)
	// Baseline: deliver once cleanly so every router has learned tables.
	for i := 0; i < 3; i++ {
		if tr, err := n.Send(names[0], host); err != nil || !tr.Delivered {
			t.Fatalf("warmup: %v %v", tr, err)
		}
	}
	n.ResetStats()
	clean, err := n.Send(names[0], host)
	if err != nil || !clean.Delivered {
		t.Fatalf("clean send: %v", err)
	}
	// Truncate every clue to 3 bits in transit (still a prefix of dest).
	n.SetLinkFault(&scriptedFault{rewrite: func(c int) int {
		if c > 3 {
			return 3
		}
		return c
	}})
	tr, err := n.Send(names[0], host)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Delivered {
		t.Fatalf("perturbed packet not delivered (drop=%v)", tr.Drop)
	}
	for i, h := range tr.Hops {
		if i > 0 && !h.FaultedClue && h.ClueIn != tr.Hops[i-1].ClueOut {
			t.Errorf("hop %d: unmarked perturbation", i)
		}
		if i > 0 && tr.Hops[i-1].ClueOut > 3 && !h.FaultedClue {
			t.Errorf("hop %d: truncated clue not marked faulted", i)
		}
	}
	// Downstream routers saw faulted packets; the stats dimension must
	// show them and their refs.
	stats := n.Stats()
	sawFaulted := false
	for _, name := range names[1:] {
		if s := stats[name]; s.FaultedPackets > 0 {
			sawFaulted = true
			if s.FaultedRefs <= 0 {
				t.Errorf("%s: faulted packets with no faulted refs", name)
			}
		}
	}
	if !sawFaulted {
		t.Error("no router recorded a faulted packet")
	}
}

func TestRouterStatsDerivedMetrics(t *testing.T) {
	s := RouterStats{Packets: 10, Refs: 30, FaultedPackets: 4, FaultedRefs: 20}
	if got := s.CleanRefsPerPacket(); got != 10.0/6.0 {
		t.Errorf("CleanRefsPerPacket = %v", got)
	}
	if got := s.FaultedRefsPerPacket(); got != 5.0 {
		t.Errorf("FaultedRefsPerPacket = %v", got)
	}
	if got := s.DegradationCost(); got < 3.33 || got > 3.34 {
		t.Errorf("DegradationCost = %v", got)
	}
	var zero RouterStats
	if zero.CleanRefsPerPacket() != 0 || zero.FaultedRefsPerPacket() != 0 || zero.DegradationCost() != 0 {
		t.Error("zero stats should yield zero metrics")
	}
	if DropNoRoute.String() != "no-route" || DropFault.String() != "fault" || DropNone.String() != "none" {
		t.Error("DropReason strings")
	}
}

// TestRouterStatsDegenerate sweeps the empty-population edge cases of the
// derived metrics: every ratio must return 0, never NaN or Inf, when its
// denominator population is empty — no packets at all, all packets
// faulted (empty clean population), and none faulted (empty faulted
// population). The accounting audit found the guards already correct;
// this pins them table-driven.
func TestRouterStatsDegenerate(t *testing.T) {
	cases := []struct {
		name                    string
		s                       RouterStats
		refsPer, cleanPer       float64
		faultedPer, degradation float64
	}{
		{name: "zero value", s: RouterStats{}},
		{name: "drops only", s: RouterStats{NoRouteDrops: 3, FaultDrops: 2}},
		{
			name:    "no faulted packets",
			s:       RouterStats{Packets: 4, Refs: 8},
			refsPer: 2, cleanPer: 2,
		},
		{
			name:    "all packets faulted",
			s:       RouterStats{Packets: 3, Refs: 9, FaultedPackets: 3, FaultedRefs: 9},
			refsPer: 3, faultedPer: 3,
			// degradation needs both populations; with no clean packets it
			// must be 0, not 3 - NaN.
		},
		{
			name: "faulted packets with zero refs",
			s:    RouterStats{Packets: 2, FaultedPackets: 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checks := []struct {
				name string
				got  float64
				want float64
			}{
				{"RefsPerPacket", tc.s.RefsPerPacket(), tc.refsPer},
				{"CleanRefsPerPacket", tc.s.CleanRefsPerPacket(), tc.cleanPer},
				{"FaultedRefsPerPacket", tc.s.FaultedRefsPerPacket(), tc.faultedPer},
				{"DegradationCost", tc.s.DegradationCost(), tc.degradation},
			}
			for _, c := range checks {
				if c.got != c.want {
					t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
				}
			}
		})
	}
}
