// Package netsim simulates packets traversing a network of routers that
// exchange clues (§1, §3, §5.3): every participating router performs its
// lookup with the help of the clue carried by the packet, then replaces
// the clue with its own best matching prefix before forwarding. Routers
// that do not participate (legacy IP routers) perform plain lookups and
// relay the incoming clue unchanged — the paper's point that the scheme
// deploys incrementally in heterogeneous networks: "Even if the packet has
// traveled several hops since a clue was last added to it, the clue it
// carries is still a prefix of the packet destination and could save a
// distant router some of the processing."
//
// The simulator is what regenerates Figure 1: the best-matching-prefix
// length of a packet along its path and, as its discrete derivative, the
// per-router lookup work — lowest in the backbone middle of the path.
package netsim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fastpath"
	"repro/internal/fib"
	"repro/internal/ip"
	"repro/internal/lookup"
	"repro/internal/mem"
	"repro/internal/routing"
	"repro/internal/telemetry"
	"repro/internal/trie"
)

// NoClue is the clue value of a packet that carries no clue.
const NoClue = -1

// CluePolicy decides what clue a router attaches for a packet whose local
// best matching prefix is bmp: return bmp.Clue() to send the full clue
// (the default), a smaller value to truncate it (§5.3: "may truncate some
// clues"), or NoClue to refrain from sending one ("may refrain from
// sending some clues"). Truncated and withheld clues are sound for
// downstream routers: a truncation is still a prefix of the destination,
// and the Simple method is sound for any destination prefix.
type CluePolicy func(bmp ip.Prefix) int

// Router is one simulated router. Configuration setters (SetMethod,
// SetVerify, SetParticipates, SetCluePolicy) and route updates
// (Network.ApplyTables) require quiescence — no Send in flight; the
// forwarding path itself (processing, learning, stats) is safe under
// concurrent Send calls and never takes a lock in this package: the
// per-upstream table maps are built eagerly at construction and on
// every configuration change, and are read-only between those points.
type Router struct {
	name         string
	table        *fib.Table
	trie         *trie.Trie
	engine       lookup.ClueEngine
	participates bool
	method       core.Method
	verify       bool       // sender verification on Advance tables (SetVerify)
	policy       CluePolicy // nil = send the full BMP
	// clueTables/fastTables hold one clue table per upstream neighbor
	// (keyed by router name; "" is the injection point). Exactly one of
	// the two maps is populated, matching Network.fastpath. The maps are
	// immutable outside rebuildTables, so Send reads them without a lock
	// — the lazy-creation mutex this replaced cost a lock/unlock per hop
	// per packet (see BenchmarkNetsimSend).
	clueTables map[string]*core.ConcurrentTable
	fastTables map[string]*fastpath.RCU
	tel        *routerTelemetry
	net        *Network
}

// routerTelemetry is one router's accounting: the per-packet bundle its
// clue tables record into (outcomes, refs/packet) plus the dimensions
// only the simulator knows (drops, fault-perturbed traffic). All of it
// lives in the network's registry, so a single Prometheus scrape sees
// every router.
type routerTelemetry struct {
	pm             *telemetry.PacketMetrics
	noRouteDrops   *telemetry.Counter
	faultDrops     *telemetry.Counter
	faultedPackets *telemetry.Counter
	faultedRefs    *telemetry.Counter
}

func newRouterTelemetry(reg *telemetry.Registry, router string) *routerTelemetry {
	lbl := telemetry.L("router", router)
	return &routerTelemetry{
		pm: telemetry.NewPacketMetrics(reg, "netsim", core.OutcomeLabels(), lbl),
		noRouteDrops: reg.NewCounter("netsim_drops_total",
			"packets dropped, by reason", lbl, telemetry.L("reason", "no-route")),
		faultDrops: reg.NewCounter("netsim_drops_total",
			"packets dropped, by reason", lbl, telemetry.L("reason", "fault")),
		faultedPackets: reg.NewCounter("netsim_faulted_packets_total",
			"packets that arrived with a clue perturbed in transit", lbl),
		faultedRefs: reg.NewCounter("netsim_faulted_refs_total",
			"memory references charged to fault-perturbed packets", lbl),
	}
}

// Name returns the router name.
func (r *Router) Name() string { return r.name }

// SetParticipates switches clue participation on or off (a legacy router
// does plain lookups and relays incoming clues unchanged). Participation
// is part of the neighbors' table configuration (they choose Advance
// only toward a participating upstream), so flipping it discards every
// learned clue table in the network.
func (r *Router) SetParticipates(on bool) {
	if r.participates == on {
		return
	}
	r.participates = on
	r.net.rebuildAllTables()
}

// Participates reports whether the router reads and writes clues.
func (r *Router) Participates() bool { return r.participates }

// rebuildTables discards this router's learned tables and pre-builds a
// fresh table per possible upstream — every other router plus the ""
// injection point — in the representation the network currently runs
// (interpreted or compiled). Eager construction is what keeps Send
// lock-free: the maps it reads are complete and immutable. Requires
// quiescence, like every configuration change.
func (r *Router) rebuildTables() {
	clue := make(map[string]*core.ConcurrentTable)
	fast := make(map[string]*fastpath.RCU)
	upstreams := make([]string, 0, len(r.net.routers))
	upstreams = append(upstreams, "")
	for name := range r.net.routers {
		if name != r.name {
			upstreams = append(upstreams, name)
		}
	}
	for _, up := range upstreams {
		if r.net.fastpath {
			rcu := fastpath.NewRCU(r.newMasterTable(up))
			// Route diffs arrive as incremental Apply batches (see
			// ApplyTables); compiled engines snapshot the trie, so the
			// batch path needs a rebuilder.
			rcu.SetEngineMaker(func(t *trie.Trie) lookup.ClueEngine { return lookup.NewPatricia(t) })
			fast[up] = rcu
		} else {
			clue[up] = core.NewConcurrentTable(r.newMasterTable(up))
		}
	}
	r.clueTables = clue
	r.fastTables = fast
}

// SetMethod selects Simple or Advance for this router's clue tables.
// Existing learned tables are discarded.
func (r *Router) SetMethod(m core.Method) {
	if r.method == m {
		return
	}
	r.method = m
	r.rebuildTables()
}

// SetVerify switches sender verification (core.Config.Verify) on or off
// for this router's Advance tables and discards existing learned tables.
// Off by default: on a trusted link the clue really is the sender's BMP,
// and verification would only re-derive that at a cost in references —
// distorting the paper's cost figures. Turn it on when links are faulty
// or adversarial: the unverified Advance method can be MISROUTED by a
// forged clue (core's forged-clue tests construct this), while a verified
// table degrades to a full lookup flagged OutcomeSuspect instead.
func (r *Router) SetVerify(on bool) {
	if r.verify == on {
		return
	}
	r.verify = on
	r.rebuildTables()
}

// SetCluePolicy installs a §5.3 clue policy (nil restores the default of
// sending the full BMP). A policy breaks the "clue = my BMP" contract the
// Advance method's Claim 1 relies on, so neighbors downstream of a
// policied router automatically fall back to Simple tables toward it
// (which are sound for any destination prefix). The fallback is baked
// into the neighbors' tables at construction, so installing a policy
// rebuilds every router's tables, discarding learned state.
func (r *Router) SetCluePolicy(p CluePolicy) {
	if p == nil && r.policy == nil {
		return
	}
	r.policy = p
	r.net.rebuildAllTables()
}

// tableConfig builds the clue-table configuration for packets arriving
// from the given upstream neighbor — the one place the config logic
// lives, shared by the interpreted and compiled representations. The
// Advance method is used only when the upstream router participates in
// the scheme and sends unmodified BMPs — a clue relayed by a legacy
// neighbor may originate from anywhere, and a §5.3 truncation policy
// breaks the "clue = sender's BMP" contract; only the Simple method is
// sound for such clues.
func (r *Router) tableConfig(upstream string) core.Config {
	cfg := core.Config{Method: core.Simple, Engine: r.engine, Local: r.trie, Learn: true}
	up := r.net.routers[upstream]
	if r.method == core.Advance && up != nil && up.participates && up.policy == nil {
		upTrie := up.trie
		cfg.Method = core.Advance
		cfg.Sender = func(p ip.Prefix) bool { return upTrie.Contains(p) }
		if r.verify {
			cfg.Verify = true
			cfg.SenderTrie = upTrie
		}
	}
	return cfg
}

// newMasterTable builds the underlying table for an upstream with the
// router's telemetry attached. Caller wraps it (ConcurrentTable or RCU)
// and must not touch it directly afterwards.
func (r *Router) newMasterTable(upstream string) *core.Table {
	tab := core.MustNewTable(r.tableConfig(upstream))
	tab.SetTelemetry(r.tel.pm)
	return tab
}

// clueTable returns the pre-built clue table for packets arriving from
// the given upstream neighbor, wrapped for concurrent Send calls
// (interpreted tables mutate on learning misses). The map is immutable
// between configuration changes, so the read takes no lock.
//
//cluevet:hotpath
func (r *Router) clueTable(upstream string) *core.ConcurrentTable {
	return r.clueTables[upstream]
}

// fastTable returns the pre-built compiled fastpath table for packets
// arriving from the given upstream. It wraps the same core table
// clueTable would; learning goes through RCU.Learn (Send reports misses)
// instead of mutating the table on the read path, and every route
// through it is differentially identical to the interpreted table —
// outcome, next hop and reference count (the fastpath package's
// differential tests pin this).
//
//cluevet:hotpath
func (r *Router) fastTable(upstream string) *fastpath.RCU {
	return r.fastTables[upstream]
}

// ExportClues returns the clue-table entries this router holds for
// packets arriving from the given upstream neighbor ("" is the injection
// point), in unspecified order, in whichever representation the network
// currently runs. The cluster harness's differential test compares these
// learned sets against a live daemon's /entries dump.
func (r *Router) ExportClues(upstream string) []core.ExportedEntry {
	if fp := r.fastTables[upstream]; fp != nil {
		return fp.Export()
	}
	if ct := r.clueTables[upstream]; ct != nil {
		return ct.Export()
	}
	return nil
}

// RouterStats accumulates one router's forwarding load across Send calls —
// the quantity Figure 1 is about ("we expect the heavily loaded routers at
// the heart of the Internet backbone to be the least loaded by our
// method") — plus the degradation dimensions the fault-injection layer
// measures: packets whose incoming clue was perturbed in transit are
// tracked separately, so the extra references a corrupted clue costs are
// directly readable, and the two ways a packet can die (no matching route
// vs. lost to an injected transport fault) are distinguished.
type RouterStats struct {
	Packets int
	Refs    int
	// NoRouteDrops counts packets this router dropped because no prefix
	// matched the destination.
	NoRouteDrops int
	// FaultDrops counts packets lost to an injected transport fault on
	// this router's egress link (the packet was routed here, then lost).
	FaultDrops int
	// FaultedPackets/FaultedRefs cover the subset of Packets that arrived
	// with a clue perturbed by the fault injector; Refs includes
	// FaultedRefs. Their ratio against the clean remainder is the
	// degradation cost of the active fault class at this router.
	FaultedPackets int
	FaultedRefs    int
}

// RefsPerPacket returns the average work per forwarded packet.
func (s RouterStats) RefsPerPacket() float64 {
	if s.Packets == 0 {
		return 0
	}
	return float64(s.Refs) / float64(s.Packets)
}

// CleanRefsPerPacket returns the average work over packets whose clue was
// NOT perturbed in transit.
func (s RouterStats) CleanRefsPerPacket() float64 {
	n := s.Packets - s.FaultedPackets
	if n == 0 {
		return 0
	}
	return float64(s.Refs-s.FaultedRefs) / float64(n)
}

// FaultedRefsPerPacket returns the average work over perturbed packets.
func (s RouterStats) FaultedRefsPerPacket() float64 {
	if s.FaultedPackets == 0 {
		return 0
	}
	return float64(s.FaultedRefs) / float64(s.FaultedPackets)
}

// DegradationCost returns the extra references per packet a perturbed clue
// cost at this router: FaultedRefsPerPacket − CleanRefsPerPacket. Zero
// when either population is empty.
func (s RouterStats) DegradationCost() float64 {
	if s.FaultedPackets == 0 || s.Packets == s.FaultedPackets {
		return 0
	}
	return s.FaultedRefsPerPacket() - s.CleanRefsPerPacket()
}

// LinkFault perturbs packets in transit between two routers — the
// netsim-facing face of the fault-injection layer (internal/fault
// implements it). Apply is called once per packet per inter-router link
// with the clue the packet carries (NoClue if none); it returns the clue
// the downstream router will see and whether the packet is lost on the
// wire. Returning the clue unchanged and drop=false is a transparent
// link.
type LinkFault interface {
	Apply(from, to string, dest ip.Addr, clue int) (newClue int, drop bool)
}

// Network is a set of routers wired by their forwarding tables' next-hop
// names. All per-router accounting lives in one telemetry registry
// (Telemetry), and every hop is appended to a ring-buffer tracer
// (HopTrace) — Figure 1 as live, scrapeable data.
type Network struct {
	routers   map[string]*Router
	reg       *telemetry.Registry
	tracer    *telemetry.HopTracer
	linkFault LinkFault
	fastpath  bool
}

// traceCapacity is how many recent hop events the network retains.
const traceCapacity = 4096

// SetFastPath switches every participating router from the interpreted
// core.Table to compiled fastpath snapshots (internal/fastpath): same
// outcomes, same reference accounting, RCU learning, an order of
// magnitude faster in wall-clock terms. Tables already learned through
// the other representation are discarded, so flip it before traffic.
func (n *Network) SetFastPath(on bool) {
	n.fastpath = on
	n.rebuildAllTables()
}

// rebuildAllTables pre-builds every router's per-upstream tables from
// the current configuration, discarding learned state. Requires
// quiescence (no Send in flight).
func (n *Network) rebuildAllTables() {
	for _, r := range n.routers {
		r.rebuildTables()
	}
}

// SetLinkFault installs a fault injector on every inter-router link (nil
// removes it). Faults apply to packets between routers, not to the final
// local delivery.
func (n *Network) SetLinkFault(f LinkFault) { n.linkFault = f }

// SetVerify switches sender verification on every router at once — the
// network-wide hardening toggle the fault harnesses flip before injecting
// adversarial clues. See Router.SetVerify.
func (n *Network) SetVerify(on bool) {
	for _, r := range n.routers {
		r.SetVerify(on)
	}
}

// New builds a network from per-router forwarding tables (as produced by
// routing.Topology.ComputeTables). Every router participates with the
// Advance method by default and uses a Patricia lookup engine.
func New(tables map[string]*fib.Table) *Network {
	n := &Network{
		routers: make(map[string]*Router, len(tables)),
		reg:     telemetry.NewRegistry(),
		tracer:  telemetry.NewHopTracer(traceCapacity),
	}
	for name, tab := range tables {
		tr := tab.Trie()
		n.routers[name] = &Router{
			name:         name,
			table:        tab,
			trie:         tr,
			engine:       lookup.NewPatricia(tr),
			participates: true,
			method:       core.Advance,
			tel:          newRouterTelemetry(n.reg, name),
			net:          n,
		}
	}
	// Pre-build every per-upstream table now that all routers exist, so
	// the forwarding path never creates (and never locks) anything.
	n.rebuildAllTables()
	return n
}

// Router returns a router by name, or nil.
func (n *Network) Router(name string) *Router { return n.routers[name] }

// Telemetry returns the network's metric registry — every router's
// outcome counters, reference histograms and drop counters, ready for
// the Prometheus exporter.
func (n *Network) Telemetry() *telemetry.Registry { return n.reg }

// HopTrace returns the ring-buffer tracer holding the most recent hop
// events across all routers (the live Figure 1).
func (n *Network) HopTrace() *telemetry.HopTracer { return n.tracer }

// Stats returns each router's accumulated forwarding load. The
// RouterStats values are views over the router's telemetry counters, so
// a snapshot taken during concurrent Send calls is consistent-enough:
// each field is a monotonic counter sum, never a torn read.
func (n *Network) Stats() map[string]RouterStats {
	out := make(map[string]RouterStats, len(n.routers))
	for name, r := range n.routers {
		out[name] = r.Stats()
	}
	return out
}

// Stats returns this router's accumulated forwarding load as a view
// over its telemetry counters.
func (r *Router) Stats() RouterStats {
	return RouterStats{
		Packets:        int(r.tel.pm.Packets()),
		Refs:           int(r.tel.pm.Refs()),
		NoRouteDrops:   int(r.tel.noRouteDrops.Value()),
		FaultDrops:     int(r.tel.faultDrops.Value()),
		FaultedPackets: int(r.tel.faultedPackets.Value()),
		FaultedRefs:    int(r.tel.faultedRefs.Value()),
	}
}

// Outcomes returns how many packets this router decided with each clue
// outcome — the per-router breakdown behind the netsim_packets_total
// counter vector.
func (r *Router) Outcomes() map[core.Outcome]int {
	out := make(map[core.Outcome]int, core.NumOutcomes)
	for i := 0; i < core.NumOutcomes; i++ {
		if v := r.tel.pm.OutcomeCount(i); v > 0 {
			out[core.Outcome(i)] = int(v)
		}
	}
	return out
}

// ResetStats clears the accumulated load counters and the hop trace
// (e.g. after a warm-up). Use at quiescent points: resets racing
// in-flight Send calls can split a packet's charges across the reset.
func (n *Network) ResetStats() {
	for _, r := range n.routers {
		r.tel.pm.Reset()
		r.tel.noRouteDrops.Reset()
		r.tel.faultDrops.Reset()
		r.tel.faultedPackets.Reset()
		r.tel.faultedRefs.Reset()
	}
	n.tracer.Reset()
}

// Hop records what happened at one router on a packet's path.
type Hop struct {
	Router  string
	Refs    int       // memory references spent at this router
	BMP     ip.Prefix // best matching prefix found here
	ClueIn  int       // clue length the packet arrived with (NoClue if none)
	ClueOut int       // clue length the packet left with
	// FaultedClue reports that ClueIn had been perturbed by the link
	// fault injector on the way here (ClueIn is the perturbed value).
	FaultedClue bool
	Outcome     core.Outcome
	NextHop     string
}

// DropReason distinguishes the ways a packet can fail to be delivered.
type DropReason int

// Drop reasons.
const (
	// DropNone: the packet was not dropped (delivered, or still an error).
	DropNone DropReason = iota
	// DropNoRoute: a router had no matching prefix for the destination.
	DropNoRoute
	// DropFault: the packet was lost to an injected transport fault.
	DropFault
)

// String implements fmt.Stringer.
func (d DropReason) String() string {
	switch d {
	case DropNoRoute:
		return "no-route"
	case DropFault:
		return "fault"
	default:
		return "none"
	}
}

// Trace is the full path of one packet.
type Trace struct {
	Dest      ip.Addr
	Hops      []Hop
	Delivered bool       // reached a router that owns the destination prefix
	Drop      DropReason // why the packet died, when not Delivered
}

// TotalRefs sums the lookup work across the whole path.
func (t *Trace) TotalRefs() int {
	sum := 0
	for _, h := range t.Hops {
		sum += h.Refs
	}
	return sum
}

// maxHops bounds a forwarding loop (routing tables from a sane topology
// never loop, but a mis-built table must not hang the simulator).
const maxHops = 64

// Send injects a packet for dest at router src and forwards it until it is
// delivered (a LocalHop route), dropped (no matching prefix), or the hop
// limit is hit.
func (n *Network) Send(src string, dest ip.Addr) (*Trace, error) {
	cur, ok := n.routers[src]
	if !ok {
		return nil, fmt.Errorf("netsim: unknown source router %q", src)
	}
	tr := &Trace{Dest: dest}
	clue := NoClue
	upstream := ""
	faulted := false // the clue in hand was perturbed in transit
	for len(tr.Hops) < maxHops {
		var cnt mem.Counter
		var res core.Result
		switch {
		case cur.participates && n.fastpath:
			rcu := cur.fastTable(upstream)
			if clue != NoClue {
				res = rcu.Process(dest, clue, &cnt)
				if res.Outcome == core.OutcomeMiss {
					// Snapshots never learn inline; report the miss so the
					// writer patches it in — core's learning semantics,
					// moved off the read path.
					rcu.Learn(dest, clue)
				}
			} else {
				res = rcu.ProcessNoClue(dest, &cnt)
			}
		case cur.participates && clue != NoClue:
			res = cur.clueTable(upstream).Process(dest, clue, &cnt)
		case cur.participates:
			res = cur.clueTable(upstream).ProcessNoClue(dest, &cnt)
		default:
			p, v, okk := cur.engine.Lookup(dest, &cnt)
			res = core.Result{Prefix: p, Value: v, OK: okk, Outcome: core.OutcomeNoClue}
		}
		hop := Hop{Router: cur.name, Refs: cnt.Count(), ClueIn: clue, FaultedClue: faulted, Outcome: res.Outcome}
		// Participating branches recorded the packet inside Process /
		// ProcessNoClue (the tables carry this router's PacketMetrics); the
		// legacy branch bypasses the clue tables, so charge it here.
		if !cur.participates {
			cur.tel.pm.Record(int(core.OutcomeNoClue), uint64(hop.Refs))
		}
		if faulted {
			cur.tel.faultedPackets.Inc()
			cur.tel.faultedRefs.Add(uint64(hop.Refs))
		}
		bmpLen := -1
		if res.OK {
			bmpLen = res.Prefix.Len()
		}
		n.tracer.Record(telemetry.HopEvent{
			Router:  cur.name,
			Dest:    dest,
			ClueIn:  hop.ClueIn,
			BMPLen:  bmpLen,
			Refs:    hop.Refs,
			Outcome: res.Outcome.String(),
		})
		if !res.OK {
			hop.ClueOut = clue
			tr.Hops = append(tr.Hops, hop)
			tr.Drop = DropNoRoute
			cur.tel.noRouteDrops.Inc()
			return tr, nil // dropped: no route
		}
		hop.BMP = res.Prefix
		next := cur.table.HopName(res.Value)
		hop.NextHop = next
		// A participating router replaces the clue with its own BMP
		// (possibly truncated or withheld by a §5.3 policy); a legacy
		// router relays the incoming clue unchanged.
		switch {
		case cur.participates && cur.policy != nil:
			hop.ClueOut = cur.policy(res.Prefix)
			if hop.ClueOut > res.Prefix.Clue() {
				hop.ClueOut = res.Prefix.Clue() // a clue must be a prefix of the BMP
			}
			if hop.ClueOut < 0 {
				hop.ClueOut = NoClue
			}
		case cur.participates:
			hop.ClueOut = res.Prefix.Clue()
		default:
			hop.ClueOut = clue
		}
		tr.Hops = append(tr.Hops, hop)
		if next == routing.LocalHop {
			tr.Delivered = true
			return tr, nil
		}
		nxt, ok := n.routers[next]
		if !ok {
			return tr, fmt.Errorf("netsim: router %q forwards to unknown router %q", cur.name, next)
		}
		upstream = cur.name
		clue = hop.ClueOut
		faulted = false
		if n.linkFault != nil {
			wire, drop := n.linkFault.Apply(cur.name, next, dest, clue)
			if drop {
				tr.Drop = DropFault
				cur.tel.faultDrops.Inc()
				return tr, nil // lost on the wire
			}
			if wire != clue {
				clue = wire
				faulted = true
			}
		}
		cur = nxt
	}
	return tr, fmt.Errorf("netsim: packet for %v exceeded %d hops (routing loop?)", dest, maxHops)
}

// Profile aggregates per-hop-position statistics over a workload whose
// packets all follow the same path — the data of Figure 1.
type Profile struct {
	Routers   []string  // router at each hop position
	AvgBMPLen []float64 // mean best-matching-prefix length per position
	AvgRefs   []float64 // mean lookup work per position
	Packets   int
}

// PathProfile sends every destination from src (warmupPasses extra times
// first, so learned clue tables reach steady state before measuring) and
// averages BMP length and work by hop position. All packets must follow
// the same router sequence; an error is returned otherwise.
func (n *Network) PathProfile(src string, dests []ip.Addr, warmupPasses int) (*Profile, error) {
	for i := 0; i < warmupPasses; i++ {
		for _, d := range dests {
			if _, err := n.Send(src, d); err != nil {
				return nil, err
			}
		}
	}
	var prof *Profile
	for _, d := range dests {
		tr, err := n.Send(src, d)
		if err != nil {
			return nil, err
		}
		if !tr.Delivered {
			return nil, fmt.Errorf("netsim: destination %v not delivered", d)
		}
		if prof == nil {
			prof = &Profile{
				Routers:   make([]string, len(tr.Hops)),
				AvgBMPLen: make([]float64, len(tr.Hops)),
				AvgRefs:   make([]float64, len(tr.Hops)),
			}
			for i, h := range tr.Hops {
				prof.Routers[i] = h.Router
			}
		}
		if len(tr.Hops) != len(prof.Routers) {
			return nil, fmt.Errorf("netsim: packet for %v took a different path", d)
		}
		for i, h := range tr.Hops {
			if h.Router != prof.Routers[i] {
				return nil, fmt.Errorf("netsim: packet for %v diverged at hop %d", d, i)
			}
			prof.AvgBMPLen[i] += float64(h.BMP.Len())
			prof.AvgRefs[i] += float64(h.Refs)
		}
		prof.Packets++
	}
	if prof == nil {
		return nil, fmt.Errorf("netsim: empty destination set")
	}
	for i := range prof.AvgBMPLen {
		prof.AvgBMPLen[i] /= float64(prof.Packets)
		prof.AvgRefs[i] /= float64(prof.Packets)
	}
	return prof, nil
}
