package netsim

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ip"
	"repro/internal/routing"
)

// figure1Network builds the paper's Figure 1 setting: a chain of routers,
// the destination edge router originating nested prefixes with shrinking
// visibility, plus background prefixes everywhere.
func figure1Network(t *testing.T, chainLen int) (*Network, []string, ip.Addr) {
	t.Helper()
	top := routing.NewTopology()
	names := routing.Chain(top, "r", chainLen)
	host := ip.MustParseAddr("204.17.33.40")
	if err := routing.NestedOrigination(top, names[chainLen-1], host,
		[]int{8, 12, 16, 20, 24, 28}, []int{-1, chainLen, chainLen * 3 / 4, chainLen / 2, chainLen / 3, 2}); err != nil {
		t.Fatal(err)
	}
	// Background routes so tables are not degenerate.
	rng := rand.New(rand.NewSource(5))
	for i, name := range names {
		for k := 0; k < 20; k++ {
			base := ip.AddrFrom32(uint32(20+i*7+k) << 24)
			if err := top.Originate(name, ip.PrefixFrom(base, 8+rng.Intn(17))); err != nil {
				t.Fatal(err)
			}
		}
	}
	return New(top.ComputeTables()), names, host
}

func TestSendDeliversAlongChain(t *testing.T) {
	n, names, host := figure1Network(t, 8)
	tr, err := n.Send(names[0], host)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Delivered {
		t.Fatal("packet not delivered")
	}
	if len(tr.Hops) != 8 {
		t.Fatalf("hops = %d, want 8", len(tr.Hops))
	}
	// First hop has no clue; later hops carry one.
	if tr.Hops[0].ClueIn != NoClue {
		t.Error("first hop should have no clue")
	}
	for i := 1; i < len(tr.Hops); i++ {
		if tr.Hops[i].ClueIn == NoClue {
			t.Errorf("hop %d lost the clue", i)
		}
		if tr.Hops[i].ClueIn != tr.Hops[i-1].ClueOut {
			t.Errorf("hop %d clue-in %d != previous clue-out %d", i, tr.Hops[i].ClueIn, tr.Hops[i-1].ClueOut)
		}
	}
	if tr.TotalRefs() <= 0 {
		t.Error("TotalRefs should be positive")
	}
}

func TestForwardingMatchesDirectLookups(t *testing.T) {
	// The clue machinery must never change WHERE packets go, only the
	// work: each hop's BMP must equal the plain lookup at that router.
	n, names, _ := figure1Network(t, 6)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		dest := ip.AddrFrom32(uint32(20+rng.Intn(60))<<24 | rng.Uint32()&0xFFFFFF)
		tr, err := n.Send(names[0], dest)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range tr.Hops {
			r := n.Router(h.Router)
			if h.Outcome == core.OutcomeNoClue && h.ClueIn != NoClue {
				t.Errorf("participating router reported no-clue for a clued packet")
			}
			wp, _, wok := r.trie.Lookup(dest, nil)
			if !wok {
				continue // dropped hop records no BMP
			}
			if h.BMP != wp {
				t.Fatalf("router %s: clue-assisted BMP %v != direct %v for %v", h.Router, h.BMP, wp, dest)
			}
		}
	}
}

func TestFigure1Shape(t *testing.T) {
	n, names, host := figure1Network(t, 8)
	// A spread of destinations within the /24 so the path is identical.
	var dests []ip.Addr
	for i := 0; i < 40; i++ {
		dests = append(dests, ip.AddrFrom32(host.Uint32()&0xFFFFFF00|uint32(i)))
	}
	prof, err := n.PathProfile(names[0], dests, 2)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Packets != 40 || len(prof.Routers) != 8 {
		t.Fatalf("profile shape: %d packets, %d hops", prof.Packets, len(prof.Routers))
	}
	// Figure 1 top: BMP length is non-decreasing toward the destination.
	for i := 1; i < len(prof.AvgBMPLen); i++ {
		if prof.AvgBMPLen[i] < prof.AvgBMPLen[i-1]-1e-9 {
			t.Errorf("BMP length decreased at hop %d: %v", i, prof.AvgBMPLen)
		}
	}
	if prof.AvgBMPLen[len(prof.AvgBMPLen)-1] <= prof.AvgBMPLen[0] {
		t.Error("BMP length never grew along the path")
	}
	// Figure 1 bottom: the work at each router tracks the DERIVATIVE of
	// the prefix-length curve ("the expected amount of work, in our
	// method, by routers along the packet path"). Where the BMP does not
	// grow, a warm Advance table answers in exactly one reference; hops
	// where it grows pay for the restricted search.
	for i := 1; i < len(prof.AvgRefs); i++ {
		growth := prof.AvgBMPLen[i] - prof.AvgBMPLen[i-1]
		if growth < 1e-9 && prof.AvgRefs[i] > 1.0+1e-9 {
			t.Errorf("hop %d: no BMP growth but work %.2f > 1", i, prof.AvgRefs[i])
		}
	}
	// And the clue scheme must beat a clue-less network on total path work.
	legacy, namesL, hostL := figure1Network(t, 8)
	for _, name := range namesL {
		legacy.Router(name).SetParticipates(false)
	}
	var legacyDests []ip.Addr
	for i := 0; i < 40; i++ {
		legacyDests = append(legacyDests, ip.AddrFrom32(hostL.Uint32()&0xFFFFFF00|uint32(i)))
	}
	legacyProf, err := legacy.PathProfile(namesL[0], legacyDests, 0)
	if err != nil {
		t.Fatal(err)
	}
	clueTotal, legacyTotal := 0.0, 0.0
	for i := range prof.AvgRefs {
		clueTotal += prof.AvgRefs[i]
		legacyTotal += legacyProf.AvgRefs[i]
	}
	if clueTotal >= legacyTotal {
		t.Errorf("clued path work %.1f not below legacy %.1f", clueTotal, legacyTotal)
	}
}

func TestLegacyRouterRelaysClue(t *testing.T) {
	n, names, host := figure1Network(t, 8)
	// Make a mid-path router legacy.
	n.Router(names[3]).SetParticipates(false)
	if n.Router(names[3]).Participates() {
		t.Fatal("SetParticipates(false) did not stick")
	}
	tr, err := n.Send(names[0], host)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Delivered {
		t.Fatal("heterogeneous network failed to deliver")
	}
	h := tr.Hops[3]
	if h.Outcome != core.OutcomeNoClue {
		t.Errorf("legacy hop outcome = %v", h.Outcome)
	}
	if h.ClueOut != h.ClueIn {
		t.Errorf("legacy router modified the clue: in %d out %d", h.ClueIn, h.ClueOut)
	}
	// The next participating router still benefits from the stale clue:
	// it must still compute the correct BMP.
	r4 := n.Router(names[4])
	wp, _, _ := r4.trie.Lookup(host, nil)
	if tr.Hops[4].BMP != wp {
		t.Errorf("router after legacy hop got %v, want %v", tr.Hops[4].BMP, wp)
	}
}

func TestSimpleVsAdvanceMethodSetting(t *testing.T) {
	n, names, host := figure1Network(t, 6)
	for _, name := range names {
		n.Router(name).SetMethod(core.Simple)
	}
	tr, err := n.Send(names[0], host)
	if err != nil || !tr.Delivered {
		t.Fatalf("Simple-network delivery failed: %v", err)
	}
	wp, _, _ := n.Router(names[5]).trie.Lookup(host, nil)
	if tr.Hops[5].BMP != wp {
		t.Errorf("Simple method got %v, want %v", tr.Hops[5].BMP, wp)
	}
}

func TestCluePolicyTruncation(t *testing.T) {
	n, names, host := figure1Network(t, 8)
	// r2 truncates every clue to at most 12 bits; r4 refuses to send any.
	n.Router(names[2]).SetCluePolicy(func(bmp ip.Prefix) int {
		if bmp.Len() > 12 {
			return 12
		}
		return bmp.Clue()
	})
	n.Router(names[4]).SetCluePolicy(func(ip.Prefix) int { return NoClue })
	tr, err := n.Send(names[0], host)
	if err != nil || !tr.Delivered {
		t.Fatalf("policied network failed: %v", err)
	}
	if tr.Hops[2].ClueOut > 12 {
		t.Errorf("truncation policy ignored: clue-out %d", tr.Hops[2].ClueOut)
	}
	if tr.Hops[4].ClueOut != NoClue {
		t.Errorf("refrain policy ignored: clue-out %d", tr.Hops[4].ClueOut)
	}
	if tr.Hops[5].Outcome != core.OutcomeNoClue {
		t.Errorf("hop after refraining sender outcome = %v, want no-clue", tr.Hops[5].Outcome)
	}
	// Correctness is unaffected at every hop.
	for _, h := range tr.Hops {
		r := n.Router(h.Router)
		wp, _, wok := r.trie.Lookup(host, nil)
		if wok && h.BMP != wp {
			t.Fatalf("router %s: BMP %v != direct %v under clue policy", h.Router, h.BMP, wp)
		}
	}
	// A policy returning nonsense is clamped.
	n.Router(names[1]).SetCluePolicy(func(bmp ip.Prefix) int { return bmp.Clue() + 99 })
	n.Router(names[3]).SetCluePolicy(func(ip.Prefix) int { return -42 })
	tr, err = n.Send(names[0], host)
	if err != nil || !tr.Delivered {
		t.Fatalf("clamped-policy network failed: %v", err)
	}
	if tr.Hops[1].ClueOut != tr.Hops[1].BMP.Len() {
		t.Errorf("overlong policy not clamped: %d", tr.Hops[1].ClueOut)
	}
	if tr.Hops[3].ClueOut != NoClue {
		t.Errorf("negative policy not clamped: %d", tr.Hops[3].ClueOut)
	}
}

func TestSendErrors(t *testing.T) {
	n, _, host := figure1Network(t, 4)
	if _, err := n.Send("nope", host); err == nil {
		t.Error("unknown source should error")
	}
}

// The whole pipeline — routing computation, clue tables, forwarding —
// works unchanged for IPv6 (7-bit clues are just larger lengths).
func TestIPv6EndToEnd(t *testing.T) {
	top := routing.NewTopology()
	names := routing.Chain(top, "v6r", 6)
	host := ip.MustParseAddr("2001:db8:7:9::42")
	if err := routing.NestedOrigination(top, names[5], host,
		[]int{32, 48, 64}, []int{-1, 3, 1}); err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		base, _ := ip.ParseAddr("2001:" + string(rune('a'+i)) + "00::")
		if err := top.Originate(name, ip.PrefixFrom(base, 24)); err != nil {
			t.Fatal(err)
		}
	}
	n := New(top.ComputeTables())
	tr, err := n.Send(names[0], host)
	if err != nil || !tr.Delivered {
		t.Fatalf("v6 delivery failed: %v", err)
	}
	if len(tr.Hops) != 6 {
		t.Fatalf("hops = %d", len(tr.Hops))
	}
	// BMP length grows from /32 to /64 along the path.
	if tr.Hops[0].BMP.Len() != 32 || tr.Hops[5].BMP.Len() != 64 {
		t.Errorf("v6 BMP lengths: first %d last %d", tr.Hops[0].BMP.Len(), tr.Hops[5].BMP.Len())
	}
	// Warm run: downstream hops resolve in one reference.
	n.Send(names[0], host)
	tr, _ = n.Send(names[0], host)
	for i, h := range tr.Hops[1:] {
		if h.Outcome == core.OutcomeMiss {
			t.Errorf("warm v6 hop %d still missing", i+1)
		}
	}
}

func TestDroppedPacket(t *testing.T) {
	n, names, _ := figure1Network(t, 4)
	// Destination outside every originated range.
	tr, err := n.Send(names[0], ip.MustParseAddr("1.2.3.4"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Delivered {
		t.Error("unroutable packet delivered")
	}
	if len(tr.Hops) != 1 {
		t.Errorf("dropped packet hops = %d, want 1", len(tr.Hops))
	}
}

// TestBackboneLoadStats builds a dumbbell network — many edge routers on
// each side of a two-router backbone — and checks the network-wide claim
// of Figure 1: with warm clue tables, the backbone routers do the least
// work per packet even though they carry all the traffic.
func TestBackboneLoadStats(t *testing.T) {
	top := routing.NewTopology()
	// Edges e0..e3 on the left, f0..f3 on the right, backbone b0-b1.
	if err := top.AddLink("b0", "b1", 1); err != nil {
		t.Fatal(err)
	}
	var left, right []string
	for i := 0; i < 4; i++ {
		l := ip.AddrFrom32(uint32(10+i) << 24)
		r := ip.AddrFrom32(uint32(20+i) << 24)
		ln := "e" + string(rune('0'+i))
		rn := "f" + string(rune('0'+i))
		left = append(left, ln)
		right = append(right, rn)
		if err := top.AddLink(ln, "b0", 1); err != nil {
			t.Fatal(err)
		}
		if err := top.AddLink(rn, "b1", 1); err != nil {
			t.Fatal(err)
		}
		// Each edge originates an aggregate globally and keeps its
		// specifics to itself (radius 0), so the backbone knows only
		// aggregates — the aggregation boundary sits at the edges.
		if err := top.Originate(ln, ip.PrefixFrom(l, 8)); err != nil {
			t.Fatal(err)
		}
		if err := top.OriginateScoped(ln, ip.PrefixFrom(l, 24), 0); err != nil {
			t.Fatal(err)
		}
		if err := top.Originate(rn, ip.PrefixFrom(r, 8)); err != nil {
			t.Fatal(err)
		}
		if err := top.OriginateScoped(rn, ip.PrefixFrom(r, 24), 0); err != nil {
			t.Fatal(err)
		}
	}
	n := New(top.ComputeTables())
	send := func() {
		for i, ln := range left {
			for j := range right {
				dest := ip.AddrFrom32(uint32(20+j)<<24 | uint32(i+1))
				if tr, err := n.Send(ln, dest); err != nil || !tr.Delivered {
					t.Fatalf("delivery %s -> %v failed: %v", ln, dest, err)
				}
			}
		}
	}
	send() // warm up
	n.ResetStats()
	stats := n.Stats()
	for name, s := range stats {
		if s.Packets != 0 {
			t.Fatalf("ResetStats left %s with %d packets", name, s.Packets)
		}
	}
	send()
	stats = n.Stats()
	// The backbone carries 16 packets each; every left edge sources 4 and
	// every right edge sinks 4.
	if stats["b0"].Packets != 16 || stats["b1"].Packets != 16 {
		t.Fatalf("backbone packets = %d/%d, want 16/16", stats["b0"].Packets, stats["b1"].Packets)
	}
	// Warm backbone work is the 1-reference floor; the clue-less source
	// edges pay more per packet.
	for _, b := range []string{"b0", "b1"} {
		if got := stats[b].RefsPerPacket(); got > 1.01 {
			t.Errorf("backbone %s refs/packet = %.2f, want ~1", b, got)
		}
	}
	for _, e := range left {
		if got := stats[e].RefsPerPacket(); got <= 1.01 {
			t.Errorf("source edge %s refs/packet = %.2f, expected above the floor", e, got)
		}
	}
	if RouterStats.RefsPerPacket(RouterStats{}) != 0 {
		t.Error("zero stats should report 0")
	}
}

func TestPathProfileErrors(t *testing.T) {
	n, names, _ := figure1Network(t, 4)
	if _, err := n.PathProfile(names[0], nil, 0); err == nil {
		t.Error("empty destination set should error")
	}
	if _, err := n.PathProfile(names[0], []ip.Addr{ip.MustParseAddr("1.2.3.4")}, 0); err == nil {
		t.Error("undeliverable destination should error")
	}
}
