package netsim

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/ip"
)

// TestStatsMatchTraces pins the accounting invariant behind the whole
// telemetry rework: the registry-backed RouterStats must agree exactly
// with the per-packet traces Send returns. Every hop charges exactly one
// packet and its reference count to exactly one router — whether the
// router is participating (the clue table records inside Process) or
// legacy (Send records manually).
func TestStatsMatchTraces(t *testing.T) {
	for _, fast := range []bool{false, true} {
		name := "interpreted"
		if fast {
			name = "fastpath"
		}
		t.Run(name, func(t *testing.T) {
			n, names, host := figure1Network(t, 6)
			n.SetFastPath(fast)
			// A legacy router in the middle exercises the manual branch.
			n.Router(names[2]).SetParticipates(false)

			wantPackets := make(map[string]int)
			wantRefs := make(map[string]int)
			hops := 0
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < 300; i++ {
				dest := host
				if i%3 == 0 {
					dest = ip.AddrFrom32(uint32(20+rng.Intn(60))<<24 | rng.Uint32()&0xFFFFFF)
				}
				tr, err := n.Send(names[0], dest)
				if err != nil {
					t.Fatal(err)
				}
				for _, h := range tr.Hops {
					wantPackets[h.Router]++
					wantRefs[h.Router] += h.Refs
					hops++
				}
			}

			stats := n.Stats()
			for name, want := range wantPackets {
				got := stats[name]
				if got.Packets != want {
					t.Errorf("router %s: Packets = %d, want %d", name, got.Packets, want)
				}
				if got.Refs != wantRefs[name] {
					t.Errorf("router %s: Refs = %d, want %d", name, got.Refs, wantRefs[name])
				}
			}
			// The outcome counter vector sums to the packet count.
			for name, want := range wantPackets {
				sum := 0
				for _, v := range n.Router(name).Outcomes() {
					sum += v
				}
				if sum != want {
					t.Errorf("router %s: outcome sum = %d, want %d", name, sum, want)
				}
			}
			// The hop tracer saw every hop.
			if got := n.HopTrace().Total(); got != uint64(hops) {
				t.Errorf("tracer total = %d, want %d", got, hops)
			}

			// And the Prometheus exporter exposes the same registry.
			var sb strings.Builder
			if err := n.Telemetry().WritePrometheus(&sb); err != nil {
				t.Fatal(err)
			}
			out := sb.String()
			for _, want := range []string{"netsim_packets_total{", "netsim_refs_per_packet_bucket{", `router="` + names[0] + `"`} {
				if !strings.Contains(out, want) {
					t.Errorf("Prometheus output missing %q", want)
				}
			}

			n.ResetStats()
			for name, s := range n.Stats() {
				if s != (RouterStats{}) {
					t.Errorf("router %s: stats not cleared by ResetStats: %+v", name, s)
				}
			}
			if n.HopTrace().Total() != 0 {
				t.Error("ResetStats did not clear the hop trace")
			}
		})
	}
}

// TestHopTraceContent checks the ring buffer records the live Figure 1:
// events in order, with the router names and BMP lengths of the path.
func TestHopTraceContent(t *testing.T) {
	n, names, host := figure1Network(t, 5)
	tr, err := n.Send(names[0], host)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Delivered {
		t.Fatal("not delivered")
	}
	events := n.HopTrace().Tail(100)
	if len(events) != len(tr.Hops) {
		t.Fatalf("tail has %d events, want %d", len(events), len(tr.Hops))
	}
	for i, ev := range events {
		h := tr.Hops[i]
		if ev.Router != h.Router || ev.Refs != h.Refs || ev.ClueIn != h.ClueIn {
			t.Errorf("event %d = %+v, want router=%s refs=%d clueIn=%d", i, ev, h.Router, h.Refs, h.ClueIn)
		}
		if ev.BMPLen != h.BMP.Len() {
			t.Errorf("event %d: BMPLen = %d, want %d", i, ev.BMPLen, h.BMP.Len())
		}
		if ev.Dest != host {
			t.Errorf("event %d: dest = %v, want %v", i, ev.Dest, host)
		}
		if ev.Outcome != h.Outcome.String() {
			t.Errorf("event %d: outcome = %q, want %q", i, ev.Outcome, h.Outcome.String())
		}
	}
}

// TestConcurrentSendStats is the regression test for the Stats-during-Send
// race: the old implementation grew a plain map[string]*RouterStats inside
// Send and iterated it in Stats, so a concurrent snapshot was a data race
// (and lazily-created interpreted tables raced on learning). Telemetry
// counters are atomic, table creation is locked and interpreted tables are
// wrapped in ConcurrentTable, so this must be -race clean.
func TestConcurrentSendStats(t *testing.T) {
	for _, fast := range []bool{false, true} {
		name := "interpreted"
		if fast {
			name = "fastpath"
		}
		t.Run(name, func(t *testing.T) {
			n, names, host := figure1Network(t, 6)
			n.SetFastPath(fast)
			const senders = 4
			var sendWG, scrapeWG sync.WaitGroup
			stop := make(chan struct{})
			for g := 0; g < senders; g++ {
				sendWG.Add(1)
				go func(seed int64) {
					defer sendWG.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < 200; i++ {
						dest := host
						if i%2 == 0 {
							dest = ip.AddrFrom32(uint32(20+rng.Intn(60))<<24 | rng.Uint32()&0xFFFFFF)
						}
						if _, err := n.Send(names[rng.Intn(len(names)-1)], dest); err != nil {
							t.Error(err)
							return
						}
					}
				}(int64(g))
			}
			scrapeWG.Add(1)
			go func() {
				defer scrapeWG.Done()
				var sb strings.Builder
				for {
					select {
					case <-stop:
						return
					default:
					}
					for _, s := range n.Stats() {
						if s.Refs < 0 {
							t.Error("negative refs in snapshot")
							return
						}
					}
					n.HopTrace().Tail(32)
					sb.Reset()
					if err := n.Telemetry().WritePrometheus(&sb); err != nil {
						t.Error(err)
						return
					}
				}
			}()
			sendWG.Wait()
			close(stop)
			scrapeWG.Wait()

			total := 0
			for _, s := range n.Stats() {
				total += s.Packets
			}
			if total == 0 {
				t.Error("no packets accounted")
			}
		})
	}
}
