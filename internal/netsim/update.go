package netsim

import (
	"fmt"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/fib"
	"repro/internal/ip"
	"repro/internal/lookup"
)

// ApplyTables installs new forwarding tables after a routing change (a
// recomputed routing.Topology, a policy change, a withdrawn origination).
// Instead of discarding state, each router's table and live trie are
// updated in place with the diff, its lookup engine is rebuilt, and every
// learned clue table is repaired incrementally:
//
//   - the router's own clue tables get UpdateLocal for each changed prefix
//     (§3.1: "updating the table upon changes in the routes"),
//   - every neighbor holding an Advance table toward this router gets
//     UpdateSender for the same prefixes (Claim 1 depends on the sender's
//     prefix set).
//
// Routers present in the network but absent from the map keep their
// tables. Unknown router names in the map are an error.
func (n *Network) ApplyTables(tables map[string]*fib.Table) error {
	changes := make(map[string][]ip.Prefix, len(tables))
	for name, newTab := range tables {
		r, ok := n.routers[name]
		if !ok {
			return fmt.Errorf("netsim: ApplyTables for unknown router %q", name)
		}
		diff := r.table.Diff(newTab)
		if len(diff) == 0 {
			continue
		}
		// Apply the diff in place: the fib table keeps its interned hop
		// IDs stable, and the live trie mirrors it.
		for _, p := range diff {
			if hop, ok := newTab.NextHop(p); ok {
				r.table.Add(p, hop)
				id := r.table.HopID(hop)
				r.trie.Insert(p, id)
			} else {
				r.table.Remove(p)
				r.trie.Delete(p)
			}
		}
		// Compiled engines snapshot the table: rebuild and swap.
		r.engine = lookup.NewPatricia(r.trie)
		changes[name] = diff
	}
	// Repair clue tables: local updates at the changed router, sender
	// updates at the routers that learned clues from it. Interpreted
	// tables are repaired under their write lock (Mutate). Compiled
	// fastpath tables absorb the same transition as one incremental
	// Apply batch — the diff rendered as a BGP-shaped update whose ops
	// use ensure semantics, so replaying them against the live trie the
	// loop above already edited converges instead of corrupting — and the
	// published snapshot is patched copy-on-write at subtree granularity
	// rather than recompiled per table.
	for name, diff := range changes {
		r := n.routers[name]
		engine := r.engine
		repairLocal := func(t *core.Table) {
			t.SetEngine(engine)
			for _, p := range diff {
				t.UpdateLocal(p)
			}
		}
		for _, tab := range r.clueTables {
			tab.Mutate(repairLocal)
		}
		u := diffUpdate(r.table, diff)
		ops := u.Ops()
		for _, rcu := range r.fastTables {
			rcu.Apply(ops)
		}
		repairSender := func(t *core.Table) {
			for _, p := range diff {
				t.UpdateSender(p)
			}
		}
		sops := u.SenderOps()
		for _, other := range n.routers {
			if other == r {
				continue
			}
			if tab, ok := other.clueTables[name]; ok {
				tab.Mutate(repairSender)
			}
			if rcu, ok := other.fastTables[name]; ok {
				rcu.Apply(sops)
			}
		}
	}
	// Engines changed: tables created later must use the new engine too
	// (they will, via r.engine), and existing tables of unchanged routers
	// are untouched.
	return nil
}

// diffUpdate renders an already-applied fib diff as one BGP UPDATE: a
// prefix still present in the table announces with its interned hop ID,
// a vanished one withdraws.
func diffUpdate(tab *fib.Table, diff []ip.Prefix) bgp.Update {
	var u bgp.Update
	for _, p := range diff {
		if hop, ok := tab.NextHop(p); ok {
			u.Announced = append(u.Announced, bgp.Announcement{Prefix: p, NextHop: tab.HopID(hop)})
		} else {
			u.Withdrawn = append(u.Withdrawn, p)
		}
	}
	return u
}
