package netsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ip"
	"repro/internal/routing"
)

// buildUpdateScenario: a 6-hop chain with nested origination, returning
// the topology (for recomputation) and the network.
func buildUpdateScenario(t *testing.T) (*routing.Topology, *Network, []string, ip.Addr) {
	t.Helper()
	top := routing.NewTopology()
	names := routing.Chain(top, "u", 6)
	host := ip.MustParseAddr("198.51.100.77")
	if err := routing.NestedOrigination(top, names[5], host, []int{8, 16, 24}, []int{-1, 4, 2}); err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		base := ip.AddrFrom32(uint32(30+i) << 24)
		if err := top.Originate(name, ip.PrefixFrom(base, 8)); err != nil {
			t.Fatal(err)
		}
	}
	return top, New(top.ComputeTables()), names, host
}

func TestApplyTablesIncremental(t *testing.T) {
	top, n, names, host := buildUpdateScenario(t)
	// Warm the clue tables.
	for i := 0; i < 3; i++ {
		if tr, err := n.Send(names[0], host); err != nil || !tr.Delivered {
			t.Fatalf("pre-update delivery failed: %v", err)
		}
	}
	// A routing change: a new, more-specific route appears at the
	// destination edge with global visibility.
	newPrefix := ip.PrefixFrom(host, 28)
	if err := top.Originate(names[5], newPrefix); err != nil {
		t.Fatal(err)
	}
	if err := n.ApplyTables(top.ComputeTables()); err != nil {
		t.Fatal(err)
	}
	// Every hop must now forward by the /28 (after clue tables resync).
	for i := 0; i < 2; i++ { // first pass may relearn, second must be clean
		tr, err := n.Send(names[0], host)
		if err != nil || !tr.Delivered {
			t.Fatalf("post-update delivery failed: %v", err)
		}
		if i == 0 {
			continue
		}
		for _, h := range tr.Hops {
			r := n.Router(h.Router)
			wp, _, wok := r.trie.Lookup(host, nil)
			if !wok || h.BMP != wp {
				t.Fatalf("hop %s: BMP %v != direct %v after update", h.Router, h.BMP, wp)
			}
			if h.BMP.Len() != 28 {
				t.Fatalf("hop %s still forwards by %v, want the /28", h.Router, h.BMP)
			}
		}
	}
}

func TestApplyTablesWithdraw(t *testing.T) {
	_, n, names, host := buildUpdateScenario(t)
	for i := 0; i < 2; i++ {
		n.Send(names[0], host)
	}
	// Withdraw the /16 (rebuild the topology without it).
	top2 := routing.NewTopology()
	names2 := routing.Chain(top2, "u", 6)
	if err := routing.NestedOrigination(top2, names2[5], host, []int{8, 24}, []int{-1, 2}); err != nil {
		t.Fatal(err)
	}
	for i, name := range names2 {
		base := ip.AddrFrom32(uint32(30+i) << 24)
		if err := top2.Originate(name, ip.PrefixFrom(base, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.ApplyTables(top2.ComputeTables()); err != nil {
		t.Fatal(err)
	}
	n.Send(names[0], host) // resync pass
	tr, err := n.Send(names[0], host)
	if err != nil || !tr.Delivered {
		t.Fatalf("post-withdraw delivery failed: %v", err)
	}
	for _, h := range tr.Hops {
		if h.BMP.Len() == 16 {
			t.Fatalf("hop %s still uses the withdrawn /16", h.Router)
		}
		r := n.Router(h.Router)
		wp, _, _ := r.trie.Lookup(host, nil)
		if h.BMP != wp {
			t.Fatalf("hop %s: %v != direct %v", h.Router, h.BMP, wp)
		}
	}
}

func TestApplyTablesUnknownRouter(t *testing.T) {
	top, n, _, _ := buildUpdateScenario(t)
	tables := top.ComputeTables()
	extra := routing.NewTopology()
	extra.AddRouter("ghost")
	if err := extra.Originate("ghost", ip.MustParsePrefix("9.0.0.0/8")); err != nil {
		t.Fatal(err)
	}
	for name, tab := range extra.ComputeTables() {
		tables[name] = tab
	}
	if err := n.ApplyTables(tables); err == nil {
		t.Error("unknown router should fail")
	}
}

func TestApplyTablesNoChangeIsNoop(t *testing.T) {
	top, n, names, host := buildUpdateScenario(t)
	n.Send(names[0], host)
	before := n.Router(names[2]).clueTables[names[1]]
	if before == nil {
		t.Fatal("clue table not learned")
	}
	learned := before.Learned()
	if err := n.ApplyTables(top.ComputeTables()); err != nil {
		t.Fatal(err)
	}
	after := n.Router(names[2]).clueTables[names[1]]
	if after != before || after.Learned() != learned {
		t.Error("no-op update disturbed learned state")
	}
	// And behavior stays exact.
	tr, err := n.Send(names[0], host)
	if err != nil || !tr.Delivered {
		t.Fatal("delivery after no-op update failed")
	}
	if tr.Hops[2].Outcome == core.OutcomeMiss {
		t.Error("no-op update invalidated learned entries")
	}
}
