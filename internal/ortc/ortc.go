// Package ortc implements Optimal Route Table Construction (Draves,
// King, Venkatachary, Zill — the technique cited as approach (5) in the
// paper's related work: "Compute locally equivalent forwarding tables that
// contain minimal number of prefixes [29] and hence most of the table can
// fit into the cache").
//
// ORTC rewrites a forwarding table into the smallest prefix set that makes
// every address resolve to the same next hop, in three passes over the
// binary trie: (1) expand to a complete tree, pushing inherited next hops
// to the leaves; (2) bottom-up, give each node the intersection of its
// children's candidate next-hop sets when it is non-empty, else the union;
// (3) top-down, emit a route at a node only when the next hop inherited
// from the nearest emitted ancestor is not in the node's candidate set.
//
// Addresses with no route are modeled as the virtual next hop NullHop, so
// tables without a default route compress correctly: the output may then
// contain explicit null routes (blackholes), which is exactly what routers
// deploy in that situation.
//
// ORTC interacts with clue routing: a compressed table is smaller but less
// similar to its neighbors' (aggregation removes the shared vertices
// clues point at), which the AblationORTC benchmark quantifies — the same
// tension §3 describes between aggregation and table similarity.
package ortc

import (
	"sort"

	"repro/internal/ip"
	"repro/internal/trie"
)

// NullHop is the virtual next hop of unrouted address space. Compressed
// tables may contain explicit routes to it.
const NullHop = -1

type node struct {
	children [2]*node
	// set is the candidate next-hop set (pass 2) and, in pass 3, the set
	// an emitted route may pick from.
	set []int
	// emit/hop are the pass-3 result.
	emit bool
	hop  int
}

// Compress returns the minimal trie equivalent to t (payloads are next-hop
// IDs; addresses t does not cover behave as NullHop). The result may
// contain NullHop routes; Lookup callers treat a NullHop result as
// "no route" (see Equivalent).
func Compress(t *trie.Trie) *trie.Trie {
	out := trie.New(t.Family())
	root := buildComplete(t)
	if root == nil {
		return out
	}
	computeSets(root)
	assign(root, NullHop)
	emit(root, ip.PrefixFrom(ip.Zero(t.Family()), 0), out)
	return out
}

// buildComplete mirrors t into a complete binary tree: every node has zero
// or two children, and every leaf carries the next hop inherited along its
// path (pass 1). Returns nil for an empty trie.
func buildComplete(t *trie.Trie) *node {
	if t.Root() == nil {
		return nil
	}
	var mirror func(src *trie.Node, inherited int) *node
	mirror = func(src *trie.Node, inherited int) *node {
		n := &node{}
		if src.Marked() {
			inherited = src.Value()
		}
		c0, c1 := src.Child(0), src.Child(1)
		if c0 == nil && c1 == nil {
			n.set = []int{inherited}
			return n
		}
		for b := byte(0); b < 2; b++ {
			if ch := src.Child(b); ch != nil {
				n.children[b] = mirror(ch, inherited)
			} else {
				// Complete the tree: the missing side is a leaf with the
				// inherited hop.
				n.children[b] = &node{set: []int{inherited}}
			}
		}
		return n
	}
	return mirror(t.Root(), NullHop)
}

// computeSets is pass 2: leaves keep their singleton; internal nodes take
// the intersection of their children's sets if non-empty, else the union.
func computeSets(n *node) {
	if n.children[0] == nil {
		return
	}
	computeSets(n.children[0])
	computeSets(n.children[1])
	inter := intersect(n.children[0].set, n.children[1].set)
	if len(inter) > 0 {
		n.set = inter
	} else {
		n.set = union(n.children[0].set, n.children[1].set)
	}
}

// assign is pass 3: a node emits a route when the hop inherited from the
// nearest emitted ancestor is not in its candidate set; emitted nodes pick
// (deterministically, the smallest) member of their set.
func assign(n *node, inherited int) {
	if !member(n.set, inherited) {
		n.emit = true
		n.hop = n.set[0]
		inherited = n.hop
	}
	if n.children[0] != nil {
		assign(n.children[0], inherited)
		assign(n.children[1], inherited)
	}
}

// emit writes the assigned routes into the output trie.
func emit(n *node, p ip.Prefix, out *trie.Trie) {
	if n.emit {
		out.Insert(p, n.hop)
	}
	if n.children[0] != nil {
		emit(n.children[0], p.Child(0), out)
		emit(n.children[1], p.Child(1), out)
	}
}

// Lookup resolves an address in a compressed trie, mapping NullHop back to
// "no route".
func Lookup(t *trie.Trie, a ip.Addr) (ip.Prefix, int, bool) {
	p, v, ok := t.Lookup(a, nil)
	if !ok || v == NullHop {
		return ip.Prefix{}, 0, false
	}
	return p, v, true
}

// Equivalent reports whether the two tables resolve address a to the same
// next hop, treating NullHop and no-match alike. Prefix lengths may differ
// (that is the point of the compression); only the hop matters.
func Equivalent(orig, compressed *trie.Trie, a ip.Addr) bool {
	_, v1, ok1 := orig.Lookup(a, nil)
	if ok1 && v1 == NullHop {
		ok1 = false
	}
	_, v2, ok2 := Lookup(compressed, a)
	if ok1 != ok2 {
		return false
	}
	return !ok1 || v1 == v2
}

// sorted-int-set helpers; sets are tiny (bounded by the number of distinct
// next hops below a node).

func member(s []int, x int) bool {
	i := sort.SearchInts(s, x)
	return i < len(s) && s[i] == x
}

func intersect(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

func union(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
