package ortc

import (
	"math/rand"
	"testing"

	"repro/internal/ip"
	"repro/internal/synth"
	"repro/internal/trie"
)

func build(routes map[string]int) *trie.Trie {
	t := trie.New(ip.IPv4)
	for p, h := range routes {
		t.Insert(ip.MustParsePrefix(p), h)
	}
	return t
}

func TestCompressEmpty(t *testing.T) {
	out := Compress(trie.New(ip.IPv4))
	if out.Size() != 0 {
		t.Errorf("empty table compressed to %d routes", out.Size())
	}
}

func TestCompressRedundantChild(t *testing.T) {
	// A child route with the same hop as its covering aggregate is
	// redundant; ORTC must drop it.
	in := build(map[string]int{"0.0.0.0/0": 1, "10.0.0.0/8": 1})
	out := Compress(in)
	if out.Size() != 1 {
		t.Fatalf("size = %d, want 1: %v", out.Size(), out.Prefixes())
	}
	if _, v, ok := Lookup(out, ip.MustParseAddr("10.1.1.1")); !ok || v != 1 {
		t.Error("lookup broken after compression")
	}
}

func TestCompressSiblingMerge(t *testing.T) {
	// Two /1s with the same hop merge into a default route.
	in := build(map[string]int{"0.0.0.0/1": 3, "128.0.0.0/1": 3})
	out := Compress(in)
	if out.Size() != 1 {
		t.Fatalf("size = %d, want 1: %v", out.Size(), out.Prefixes())
	}
	p := out.Prefixes()[0]
	if p.Len() != 0 {
		t.Errorf("merged route = %v, want the default", p)
	}
}

func TestCompressKeepsSingleRoute(t *testing.T) {
	in := build(map[string]int{"10.0.0.0/8": 5})
	out := Compress(in)
	if out.Size() != 1 || !out.Contains(ip.MustParsePrefix("10.0.0.0/8")) {
		t.Fatalf("single route changed: %v", out.Prefixes())
	}
}

func TestCompressClassicExample(t *testing.T) {
	// The canonical ORTC illustration: a default with two more-specifics
	// whose hops let the default flip to the majority hop.
	in := build(map[string]int{
		"0.0.0.0/0":   1,
		"0.0.0.0/1":   2,
		"128.0.0.0/2": 2,
	})
	// Addresses: [0,128) -> 2, [128,192) -> 2, [192,256) -> 1.
	out := Compress(in)
	if out.Size() != 2 {
		t.Fatalf("size = %d, want 2: %v", out.Size(), out.Prefixes())
	}
	for addr, want := range map[string]int{"5.0.0.0": 2, "130.0.0.0": 2, "200.0.0.0": 1} {
		if _, v, ok := Lookup(out, ip.MustParseAddr(addr)); !ok || v != want {
			t.Errorf("%s -> %d/%v, want %d", addr, v, ok, want)
		}
	}
}

func TestCompressNullRoutes(t *testing.T) {
	// No default: unrouted space must stay unrouted, possibly via explicit
	// null routes.
	in := build(map[string]int{"10.0.0.0/8": 1, "10.1.0.0/16": 2})
	out := Compress(in)
	for _, addr := range []string{"10.1.2.3", "10.2.0.0", "11.0.0.0", "0.0.0.0"} {
		if !Equivalent(in, out, ip.MustParseAddr(addr)) {
			t.Errorf("not equivalent at %s", addr)
		}
	}
	if out.Size() > in.Size() {
		t.Errorf("compression grew the table: %d > %d", out.Size(), in.Size())
	}
}

// Property: over random tables, the compressed table is equivalent at
// every probed address, never larger, and compression is idempotent.
func TestQuickCompressEquivalentAndMinimalish(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 40; trial++ {
		in := trie.New(ip.IPv4)
		nHops := 2 + rng.Intn(4)
		for i := 0; i < 40; i++ {
			p := ip.PrefixFrom(ip.AddrFrom32(rng.Uint32()&0x0F0F00FF), rng.Intn(26))
			in.Insert(p, rng.Intn(nHops))
		}
		out := Compress(in)
		if out.Size() > in.Size() {
			t.Fatalf("trial %d: compression grew %d -> %d", trial, in.Size(), out.Size())
		}
		for i := 0; i < 600; i++ {
			a := ip.AddrFrom32(rng.Uint32() & 0x0F0F00FF)
			if !Equivalent(in, out, a) {
				_, v1, ok1 := in.Lookup(a, nil)
				_, v2, ok2 := Lookup(out, a)
				t.Fatalf("trial %d: not equivalent at %v: orig %d/%v comp %d/%v", trial, a, v1, ok1, v2, ok2)
			}
		}
		again := Compress(out)
		if again.Size() != out.Size() {
			t.Fatalf("trial %d: not idempotent: %d -> %d", trial, out.Size(), again.Size())
		}
	}
}

// On realistic tables the reduction should be substantial (the [29]
// motivation: fit the table in cache).
func TestCompressRealisticReduction(t *testing.T) {
	u := synth.NewUniverse(11, 5000)
	tab := u.Router(synth.RouterSpec{Name: "C", Size: 3000, Divergence: 0.01, Hops: []string{"a", "b", "c"}})
	in := tab.Trie()
	out := Compress(in)
	if out.Size() >= in.Size() {
		t.Fatalf("no reduction: %d -> %d", in.Size(), out.Size())
	}
	t.Logf("ORTC: %d -> %d routes (%.0f%%)", in.Size(), out.Size(), 100*float64(out.Size())/float64(in.Size()))
	rng := rand.New(rand.NewSource(12))
	w := synth.NewWorkload(12, tab)
	for i := 0; i < 3000; i++ {
		if !Equivalent(in, out, w.Next()) {
			t.Fatal("realistic compression not equivalent")
		}
		a := ip.AddrFrom32(rng.Uint32())
		if !Equivalent(in, out, a) {
			t.Fatalf("not equivalent at random address %v", a)
		}
	}
}

func TestSetHelpers(t *testing.T) {
	if got := intersect([]int{1, 3, 5}, []int{2, 3, 5, 7}); len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Errorf("intersect = %v", got)
	}
	if got := union([]int{1, 3}, []int{2, 3, 4}); len(got) != 4 {
		t.Errorf("union = %v", got)
	}
	if !member([]int{-1, 2, 9}, -1) || member([]int{2, 9}, 3) {
		t.Error("member wrong")
	}
	if got := intersect(nil, []int{1}); len(got) != 0 {
		t.Errorf("intersect nil = %v", got)
	}
	if got := union(nil, nil); len(got) != 0 {
		t.Errorf("union nil = %v", got)
	}
}
