// Package patricia implements the path-compressed binary trie ("Patricia",
// §2 and §4 of the paper): every internal unmarked vertex with a single
// child is contracted, so each vertex is either a forwarding-table prefix
// (marked) or has two children. The classic IP-lookup walk compares the
// skipped bits at each vertex; every vertex visited costs one memory
// reference, which is the metric of the paper's tables.
//
// For clue routing the package provides FindPoint — the vertex at which a
// search resumed from a clue enters the compressed trie — and a restricted
// walk with the §4 per-vertex "should the search continue?" Boolean hook
// ("we associate with each vertex a Boolean indicating whether the search
// should continue from this vertex", computed from Claim 1).
package patricia

import (
	"repro/internal/ip"
	"repro/internal/mem"
)

// Node is a vertex of the compressed trie.
type Node struct {
	prefix   ip.Prefix
	children [2]*Node
	marked   bool
	value    int
}

// Prefix returns the full binary string from the root to this vertex.
func (n *Node) Prefix() ip.Prefix { return n.prefix }

// Marked reports whether this vertex is a forwarding-table prefix.
func (n *Node) Marked() bool { return n.marked }

// Value returns the payload of a marked vertex.
func (n *Node) Value() int { return n.value }

// Child returns the b-child (b in {0,1}), or nil.
func (n *Node) Child(b byte) *Node { return n.children[b&1] }

// HasChildren reports whether the vertex has descendants.
func (n *Node) HasChildren() bool { return n.children[0] != nil || n.children[1] != nil }

// Trie is a path-compressed binary prefix trie over one address family.
type Trie struct {
	root *Node
	fam  ip.Family
	size int
}

// New returns an empty Patricia trie for the given family.
func New(fam ip.Family) *Trie { return &Trie{fam: fam} }

// Family returns the trie's address family.
func (t *Trie) Family() ip.Family { return t.fam }

// Size returns the number of marked prefixes.
func (t *Trie) Size() int { return t.size }

// Root returns the root vertex, or nil for an empty trie.
func (t *Trie) Root() *Node { return t.root }

// NodeCount returns the total number of vertices. Path compression bounds
// it by 2·Size−1.
func (t *Trie) NodeCount() int {
	var count func(*Node) int
	count = func(n *Node) int {
		if n == nil {
			return 0
		}
		return 1 + count(n.children[0]) + count(n.children[1])
	}
	return count(t.root)
}

// common returns the length of the longest common prefix of p and q.
func common(p, q ip.Prefix) int {
	n := p.Addr().CommonPrefixLen(q.Addr())
	if n > p.Len() {
		n = p.Len()
	}
	if n > q.Len() {
		n = q.Len()
	}
	return n
}

// Insert adds prefix p with payload v, splitting compressed edges as
// needed. Inserting an existing prefix overwrites its payload.
//
//cluevet:ctor - trie construction; panics on family mismatch by design
func (t *Trie) Insert(p ip.Prefix, v int) {
	if p.Family() != t.fam {
		panic("patricia: family mismatch")
	}
	if t.root == nil {
		t.root = &Node{prefix: p, marked: true, value: v}
		t.size++
		return
	}
	slot := &t.root
	for {
		n := *slot
		c := common(p, n.prefix)
		if c < n.prefix.Len() {
			// p diverges inside the edge leading to n: split at depth c.
			mid := &Node{prefix: ip.PrefixFrom(n.prefix.Addr(), c)}
			*slot = mid
			mid.children[n.prefix.Bit(c)] = n
			if c == p.Len() {
				// p is exactly the split point.
				mid.marked, mid.value = true, v
				t.size++
			} else {
				leaf := &Node{prefix: p, marked: true, value: v}
				mid.children[p.Bit(c)] = leaf
				t.size++
			}
			return
		}
		// n.prefix is an ancestor of (or equals) p.
		if p.Len() == n.prefix.Len() {
			if !n.marked {
				n.marked = true
				t.size++
			}
			n.value = v
			return
		}
		b := p.Bit(n.prefix.Len())
		if n.children[b] == nil {
			n.children[b] = &Node{prefix: p, marked: true, value: v}
			t.size++
			return
		}
		slot = &n.children[b]
	}
}

// Delete removes prefix p, re-contracting edges so the Patricia invariant
// (every unmarked internal vertex has two children) is restored. It returns
// false if p was not a marked prefix.
func (t *Trie) Delete(p ip.Prefix) bool {
	if p.Family() != t.fam || t.root == nil {
		return false
	}
	// Walk down recording the slots (parent child-pointers) on the path.
	slots := []**Node{&t.root}
	n := t.root
	for n.prefix.Len() < p.Len() {
		if common(p, n.prefix) < n.prefix.Len() {
			return false
		}
		b := p.Bit(n.prefix.Len())
		if n.children[b] == nil {
			return false
		}
		slots = append(slots, &n.children[b])
		n = n.children[b]
	}
	if n.prefix != p || !n.marked {
		return false
	}
	n.marked = false
	t.size--
	t.contract(slots)
	return true
}

// contract removes the last node on the slot path if it became redundant,
// then re-checks its parent (removing a leaf can leave an unmarked parent
// with one child).
func (t *Trie) contract(slots []**Node) {
	for i := len(slots) - 1; i >= 0; i-- {
		slot := slots[i]
		n := *slot
		if n.marked {
			return
		}
		switch {
		case n.children[0] != nil && n.children[1] != nil:
			return // still a proper internal vertex
		case n.children[0] != nil:
			*slot = n.children[0]
			return
		case n.children[1] != nil:
			*slot = n.children[1]
			return
		default:
			*slot = nil // unmarked leaf: remove and re-check parent
		}
	}
}

// Lookup performs the best-matching-prefix walk from the root. Every
// vertex visited costs one memory reference on c.
//
//cluevet:hotpath
func (t *Trie) Lookup(a ip.Addr, c *mem.Counter) (ip.Prefix, int, bool) {
	return t.walk(t.root, a, c, nil)
}

// LookupFrom resumes the walk at vertex start (obtained via FindPoint from
// a clue). The caller is responsible for start lying on a's path.
func (t *Trie) LookupFrom(start *Node, a ip.Addr, c *mem.Counter) (ip.Prefix, int, bool) {
	return t.walk(start, a, c, nil)
}

// LookupFromWithStop is LookupFrom with the §4 per-vertex Boolean: when
// stop(n) reports true the walk does not descend past n (n itself is still
// examined). This is how the Advance method prunes the Patricia search
// using Claim 1 applied at every vertex.
func (t *Trie) LookupFromWithStop(start *Node, a ip.Addr, c *mem.Counter, stop func(*Node) bool) (ip.Prefix, int, bool) {
	return t.walk(start, a, c, stop)
}

func (t *Trie) walk(n *Node, a ip.Addr, c *mem.Counter, stop func(*Node) bool) (ip.Prefix, int, bool) {
	var best *Node
	for n != nil {
		c.Add(1)
		if !n.prefix.Contains(a) {
			break
		}
		if n.marked {
			best = n
		}
		if n.prefix.Len() >= t.fam.Width() || (stop != nil && stop(n)) {
			break
		}
		n = n.children[a.Bit(n.prefix.Len())]
	}
	if best == nil {
		return ip.Prefix{}, 0, false
	}
	return best.prefix, best.value, true
}

// Find returns the vertex whose prefix is exactly p, or nil. With path
// compression an existing forwarding-table prefix always has its own
// vertex, but an arbitrary binary string may not.
func (t *Trie) Find(p ip.Prefix) *Node {
	n := t.root
	for n != nil {
		if n.prefix.Len() > p.Len() {
			return nil
		}
		if common(p, n.prefix) < n.prefix.Len() {
			return nil
		}
		if n.prefix.Len() == p.Len() {
			return n
		}
		n = n.children[p.Bit(n.prefix.Len())]
	}
	return nil
}

// Contains reports whether p is a marked prefix.
func (t *Trie) Contains(p ip.Prefix) bool {
	n := t.Find(p)
	return n != nil && n.marked && n.prefix == p
}

// FindPoint returns the vertex at which a search for addresses extending
// clue s enters the compressed trie: the shallowest vertex whose prefix
// extends (or equals) s. It returns nil when the trie contains no vertex
// at or below s — the Simple method's "Ptr := Empty" case. FindPoint runs
// at clue-table construction time, so it records no memory references.
func (t *Trie) FindPoint(s ip.Prefix) *Node {
	n := t.root
	for n != nil {
		if n.prefix.Len() >= s.Len() {
			if s.IsAncestorOf(n.prefix) {
				return n
			}
			return nil
		}
		if common(s, n.prefix) < n.prefix.Len() {
			return nil
		}
		n = n.children[s.Bit(n.prefix.Len())]
	}
	return nil
}

// BMPOf returns the longest marked ancestor-or-self of prefix p (the FD
// computation; construction-time, no cost recorded).
func (t *Trie) BMPOf(p ip.Prefix) (ip.Prefix, int, bool) {
	var best *Node
	n := t.root
	for n != nil {
		if n.prefix.Len() > p.Len() || common(p, n.prefix) < n.prefix.Len() {
			break
		}
		if n.marked {
			best = n
		}
		if n.prefix.Len() == p.Len() {
			break
		}
		n = n.children[p.Bit(n.prefix.Len())]
	}
	if best == nil {
		return ip.Prefix{}, 0, false
	}
	return best.prefix, best.value, true
}

// Walk visits every marked prefix in lexicographic order until fn returns
// false.
func (t *Trie) Walk(fn func(p ip.Prefix, v int) bool) {
	var walk func(*Node) bool
	walk = func(n *Node) bool {
		if n == nil {
			return true
		}
		if n.marked && !fn(n.prefix, n.value) {
			return false
		}
		return walk(n.children[0]) && walk(n.children[1])
	}
	walk(t.root)
}

// FromPrefixes builds a Patricia trie from a prefix/payload list.
func FromPrefixes(fam ip.Family, ps []ip.Prefix, vals []int) *Trie {
	t := New(fam)
	for i, p := range ps {
		v := i
		if vals != nil {
			v = vals[i]
		}
		t.Insert(p, v)
	}
	return t
}
