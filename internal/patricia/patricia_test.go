package patricia

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ip"
	"repro/internal/mem"
	"repro/internal/trie"
)

func randomPrefixes(rng *rand.Rand, n int) []ip.Prefix {
	out := make([]ip.Prefix, 0, n)
	for len(out) < n {
		a := ip.AddrFrom32(rng.Uint32() & 0x1F0F00FF)
		out = append(out, ip.PrefixFrom(a, rng.Intn(33)))
	}
	return out
}

// checkInvariant verifies path compression: every unmarked vertex has two
// children, every leaf is marked, child prefixes extend the parent's.
func checkInvariant(t *testing.T, tr *Trie) {
	t.Helper()
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if !n.Marked() && (n.Child(0) == nil || n.Child(1) == nil) {
			t.Fatalf("unmarked vertex %v lacks two children", n.Prefix())
		}
		for b := byte(0); b < 2; b++ {
			ch := n.Child(b)
			if ch == nil {
				continue
			}
			if !n.Prefix().IsAncestorOf(ch.Prefix()) || ch.Prefix().Len() <= n.Prefix().Len() {
				t.Fatalf("child %v does not extend parent %v", ch.Prefix(), n.Prefix())
			}
			if ch.Prefix().Bit(n.Prefix().Len()) != b {
				t.Fatalf("child %v under wrong branch of %v", ch.Prefix(), n.Prefix())
			}
			walk(ch)
		}
	}
	walk(tr.Root())
}

func TestInsertLookupBasic(t *testing.T) {
	tr := New(ip.IPv4)
	tr.Insert(ip.MustParsePrefix("10.0.0.0/8"), 1)
	tr.Insert(ip.MustParsePrefix("10.1.0.0/16"), 2)
	tr.Insert(ip.MustParsePrefix("10.1.2.0/24"), 3)
	tr.Insert(ip.MustParsePrefix("192.168.0.0/16"), 4)
	checkInvariant(t, tr)

	var c mem.Counter
	p, v, ok := tr.Lookup(ip.MustParseAddr("10.1.2.3"), &c)
	if !ok || v != 3 || p.Len() != 24 {
		t.Fatalf("Lookup = %v %d %v", p, v, ok)
	}
	// Compressed path: root(split at bit 0 or deeper) .. at most 4 nodes.
	if c.Count() > 5 {
		t.Errorf("Patricia walk cost = %d, expected small", c.Count())
	}
	if _, _, ok = tr.Lookup(ip.MustParseAddr("11.0.0.0"), nil); ok {
		t.Error("11.0.0.0 should not match")
	}
	if tr.Size() != 4 {
		t.Errorf("Size = %d", tr.Size())
	}
	if nc := tr.NodeCount(); nc > 2*tr.Size()-1 {
		t.Errorf("NodeCount %d exceeds 2*size-1", nc)
	}
}

func TestInsertSplitCases(t *testing.T) {
	tr := New(ip.IPv4)
	// Leaf first, then an ancestor (split point == new prefix).
	tr.Insert(ip.MustParsePrefix("10.1.2.0/24"), 1)
	tr.Insert(ip.MustParsePrefix("10.1.0.0/16"), 2)
	checkInvariant(t, tr)
	if !tr.Contains(ip.MustParsePrefix("10.1.0.0/16")) {
		t.Fatal("split-point prefix not marked")
	}
	// Sibling divergence (split creates unmarked internal vertex).
	tr.Insert(ip.MustParsePrefix("10.1.3.0/24"), 3)
	checkInvariant(t, tr)
	if tr.Size() != 3 {
		t.Errorf("Size = %d", tr.Size())
	}
	// Overwrite.
	tr.Insert(ip.MustParsePrefix("10.1.3.0/24"), 9)
	if v, ok := lookupExact(tr, "10.1.3.0/24"); !ok || v != 9 {
		t.Errorf("overwrite failed: %d %v", v, ok)
	}
	if tr.Size() != 3 {
		t.Errorf("Size after overwrite = %d", tr.Size())
	}
}

func lookupExact(tr *Trie, s string) (int, bool) {
	n := tr.Find(ip.MustParsePrefix(s))
	if n == nil || !n.Marked() {
		return 0, false
	}
	return n.Value(), true
}

func TestDeleteContract(t *testing.T) {
	tr := New(ip.IPv4)
	tr.Insert(ip.MustParsePrefix("10.1.2.0/24"), 1)
	tr.Insert(ip.MustParsePrefix("10.1.3.0/24"), 2)
	tr.Insert(ip.MustParsePrefix("10.1.0.0/16"), 3)
	if !tr.Delete(ip.MustParsePrefix("10.1.2.0/24")) {
		t.Fatal("Delete failed")
	}
	checkInvariant(t, tr)
	if tr.Size() != 2 || tr.NodeCount() != 2 {
		t.Errorf("Size/NodeCount = %d/%d, want 2/2", tr.Size(), tr.NodeCount())
	}
	// Deleting a marked internal vertex with two children keeps the vertex.
	tr2 := New(ip.IPv4)
	tr2.Insert(ip.MustParsePrefix("10.0.0.0/8"), 1)
	tr2.Insert(ip.MustParsePrefix("10.0.0.0/9"), 2)
	tr2.Insert(ip.MustParsePrefix("10.128.0.0/9"), 3)
	if !tr2.Delete(ip.MustParsePrefix("10.0.0.0/8")) {
		t.Fatal("Delete /8 failed")
	}
	checkInvariant(t, tr2)
	if _, _, ok := tr2.Lookup(ip.MustParseAddr("10.200.0.1"), nil); !ok {
		t.Error("/9 routes should survive")
	}
	// Nonexistent deletes.
	for _, s := range []string{"10.0.0.0/8", "10.64.0.0/10", "99.0.0.0/8"} {
		if tr2.Delete(ip.MustParsePrefix(s)) {
			t.Errorf("Delete(%s) should fail", s)
		}
	}
}

func TestDeleteToEmpty(t *testing.T) {
	tr := New(ip.IPv4)
	tr.Insert(ip.MustParsePrefix("10.0.0.0/8"), 1)
	if !tr.Delete(ip.MustParsePrefix("10.0.0.0/8")) || tr.Root() != nil || tr.Size() != 0 {
		t.Error("delete to empty failed")
	}
	if tr.Delete(ip.MustParsePrefix("10.0.0.0/8")) {
		t.Error("delete on empty should fail")
	}
}

// Property test: Patricia lookup agrees with the uncompressed trie on random
// tables and random destinations, and uses no more references.
func TestQuickAgreesWithBinaryTrie(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		set := randomPrefixes(rng, 80)
		pat := New(ip.IPv4)
		bin := trie.New(ip.IPv4)
		for i, p := range set {
			pat.Insert(p, i)
			bin.Insert(p, i)
		}
		checkInvariant(t, pat)
		if pat.Size() != bin.Size() {
			t.Fatalf("size mismatch %d vs %d", pat.Size(), bin.Size())
		}
		for i := 0; i < 300; i++ {
			a := ip.AddrFrom32(rng.Uint32() & 0x1F0F00FF)
			var cp, cb mem.Counter
			pp, _, okp := pat.Lookup(a, &cp)
			pb, _, okb := bin.Lookup(a, &cb)
			if okp != okb || (okp && pp != pb) {
				t.Fatalf("trial %d: patricia %v/%v vs trie %v/%v for %v", trial, pp, okp, pb, okb, a)
			}
			if cp.Count() > cb.Count() {
				t.Fatalf("patricia cost %d exceeds uncompressed %d", cp.Count(), cb.Count())
			}
		}
	}
}

func TestQuickDeleteRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		set := randomPrefixes(rng, 50)
		pat := New(ip.IPv4)
		alive := map[ip.Prefix]int{}
		for i, p := range set {
			pat.Insert(p, i)
			alive[p] = i
		}
		for i := 0; i < 30; i++ {
			p := set[rng.Intn(len(set))]
			if _, ok := alive[p]; ok {
				if !pat.Delete(p) {
					t.Fatalf("Delete(%v) failed", p)
				}
				delete(alive, p)
			} else if pat.Delete(p) {
				t.Fatalf("Delete(%v) succeeded twice", p)
			}
			checkInvariant(t, pat)
		}
		if pat.Size() != len(alive) {
			t.Fatalf("Size = %d, want %d", pat.Size(), len(alive))
		}
		rest := make([]ip.Prefix, 0, len(alive))
		for p := range alive {
			rest = append(rest, p)
		}
		bin := trie.New(ip.IPv4)
		for i, p := range rest {
			bin.Insert(p, i)
		}
		for i := 0; i < 200; i++ {
			a := ip.AddrFrom32(rng.Uint32() & 0x1F0F00FF)
			pp, _, okp := pat.Lookup(a, nil)
			pb, _, okb := bin.Lookup(a, nil)
			if okp != okb || (okp && pp != pb) {
				t.Fatalf("post-delete mismatch for %v: %v/%v vs %v/%v", a, pp, okp, pb, okb)
			}
		}
	}
}

// quick.Check property: for any seed, a Patricia trie built from random
// prefixes preserves size, invariants and lookup agreement.
func TestQuickCheckPatriciaProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		set := randomPrefixes(rng, 40)
		pat := New(ip.IPv4)
		bin := trie.New(ip.IPv4)
		for i, p := range set {
			pat.Insert(p, i)
			bin.Insert(p, i)
		}
		if pat.Size() != bin.Size() || pat.NodeCount() > 2*pat.Size()-1 {
			return false
		}
		for i := 0; i < 80; i++ {
			a := ip.AddrFrom32(rng.Uint32() & 0x1F0F00FF)
			pp, _, okp := pat.Lookup(a, nil)
			pb, _, okb := bin.Lookup(a, nil)
			if okp != okb || (okp && pp != pb) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFindPoint(t *testing.T) {
	tr := New(ip.IPv4)
	tr.Insert(ip.MustParsePrefix("10.1.2.0/24"), 1)
	tr.Insert(ip.MustParsePrefix("10.1.3.0/24"), 2)
	// Clue inside a compressed edge: /16 has no vertex, resume at the /23
	// split vertex (10.1.2.0/23).
	n := tr.FindPoint(ip.MustParsePrefix("10.1.0.0/16"))
	if n == nil || n.Prefix().String() != "10.1.2.0/23" {
		t.Fatalf("FindPoint(/16) = %v", n)
	}
	// Clue equal to an existing vertex.
	n = tr.FindPoint(ip.MustParsePrefix("10.1.2.0/23"))
	if n == nil || n.Prefix().Len() != 23 {
		t.Fatalf("FindPoint(/23) = %v", n)
	}
	// Clue below all vertices on a diverging path.
	if tr.FindPoint(ip.MustParsePrefix("10.2.0.0/16")) != nil {
		t.Error("FindPoint for disjoint clue should be nil")
	}
	// Clue strictly below a leaf.
	if tr.FindPoint(ip.MustParsePrefix("10.1.2.128/25")) != nil {
		t.Error("FindPoint below leaf should be nil")
	}
	// Clue whose edge diverges mid-way: 10.1.2.0/24 exists; clue 10.1.0.0/20
	// lies on the edge (10.1.2.0/23 covers bits up to 23; clue /20 with
	// different bits).
	if got := tr.FindPoint(ip.MustParsePrefix("10.1.240.0/20")); got != nil {
		t.Errorf("FindPoint diverging = %v, want nil", got)
	}
}

// Property: FindPoint(s) followed by LookupFrom equals a full Lookup for
// destinations whose BMP is at or below s.
func TestQuickFindPointResume(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		set := randomPrefixes(rng, 60)
		pat := New(ip.IPv4)
		for i, p := range set {
			pat.Insert(p, i)
		}
		for i := 0; i < 200; i++ {
			a := ip.AddrFrom32(rng.Uint32() & 0x1F0F00FF)
			full, fv, fok := pat.Lookup(a, nil)
			if !fok {
				continue
			}
			// Any clue that is an ancestor of the BMP must resume correctly.
			cl := rng.Intn(full.Len() + 1)
			s := ip.PrefixFrom(a, cl)
			n := pat.FindPoint(s)
			got, gv, gok := pat.LookupFrom(n, a, nil)
			// LookupFrom only sees matches at/below the entry point; the
			// clue table's FD covers the rest. Here clue ≤ BMP so the BMP
			// is at/below s... unless it sits above the entry vertex? No:
			// BMP extends s, so it is found from FindPoint(s).
			if !gok || got != full || gv != fv {
				t.Fatalf("resume from %v for %v: got %v/%d/%v, want %v/%d", s, a, got, gv, gok, full, fv)
			}
		}
	}
}

func TestLookupFromWithStop(t *testing.T) {
	tr := New(ip.IPv4)
	tr.Insert(ip.MustParsePrefix("10.0.0.0/8"), 1)
	tr.Insert(ip.MustParsePrefix("10.1.0.0/16"), 2)
	tr.Insert(ip.MustParsePrefix("10.1.2.0/24"), 3)
	stopAt16 := func(n *Node) bool { return n.Prefix().Len() >= 16 }
	p, v, ok := tr.LookupFromWithStop(tr.Root(), ip.MustParseAddr("10.1.2.3"), nil, stopAt16)
	if !ok || v != 2 || p.Len() != 16 {
		t.Errorf("stopped walk = %v %d %v, want /16", p, v, ok)
	}
}

func TestWalkOrder(t *testing.T) {
	tr := FromPrefixes(ip.IPv4, []ip.Prefix{
		ip.MustParsePrefix("192.168.0.0/16"),
		ip.MustParsePrefix("10.0.0.0/8"),
		ip.MustParsePrefix("10.128.0.0/9"),
	}, nil)
	var got []string
	tr.Walk(func(p ip.Prefix, _ int) bool { got = append(got, p.String()); return true })
	want := []string{"10.0.0.0/8", "10.128.0.0/9", "192.168.0.0/16"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Walk order = %v", got)
		}
	}
}

func TestBMPOfPatricia(t *testing.T) {
	tr := New(ip.IPv4)
	tr.Insert(ip.MustParsePrefix("10.0.0.0/8"), 1)
	tr.Insert(ip.MustParsePrefix("10.1.2.0/24"), 2)
	p, v, ok := tr.BMPOf(ip.MustParsePrefix("10.1.0.0/16"))
	if !ok || v != 1 || p.Len() != 8 {
		t.Errorf("BMPOf(/16) = %v %d %v, want /8", p, v, ok)
	}
	p, _, ok = tr.BMPOf(ip.MustParsePrefix("10.1.2.0/24"))
	if !ok || p.Len() != 24 {
		t.Errorf("BMPOf(self) = %v %v", p, ok)
	}
	if _, _, ok = tr.BMPOf(ip.MustParsePrefix("11.0.0.0/8")); ok {
		t.Error("BMPOf(disjoint) should fail")
	}
}
