// Package perfmodel translates the paper's cost metric — memory references
// per packet — into the terms of its motivation ("the increased demand for
// Gigabit routers"): lookups per second and sustainable line rate on
// 1999-class hardware. The whole evaluation is hardware-independent by
// design; this model only multiplies it back out, with the assumptions
// explicit and adjustable.
package perfmodel

import (
	"fmt"

	"repro/internal/mem"
)

// Hardware describes the memory system of a forwarding engine.
type Hardware struct {
	// MemoryNs is the cost of one memory reference in nanoseconds.
	MemoryNs float64
	// AvgPacketBytes converts packet rate to line rate.
	AvgPacketBytes int
}

// SDRAM1999 is the paper's implied platform: ~60 ns SDRAM references
// (§3.5 discusses 32-byte-line SDRAM) and the then-typical ~300-byte
// average Internet packet.
func SDRAM1999() Hardware {
	return Hardware{MemoryNs: 60, AvgPacketBytes: 300}
}

// LookupsPerSecond returns how many lookups per second a scheme sustains
// at the given average references per packet.
func (h Hardware) LookupsPerSecond(refsPerPacket float64) float64 {
	if refsPerPacket <= 0 {
		return 0
	}
	return 1e9 / (refsPerPacket * h.MemoryNs)
}

// LineRateGbps returns the sustainable line rate in gigabits per second.
func (h Hardware) LineRateGbps(refsPerPacket float64) float64 {
	return h.LookupsPerSecond(refsPerPacket) * float64(h.AvgPacketBytes) * 8 / 1e9
}

// Scheme is one (name, refs/packet) measurement to translate.
type Scheme struct {
	Name string
	Refs float64
}

// Translate renders the hardware translation table for a set of measured
// schemes.
func (h Hardware) Translate(schemes []Scheme) string {
	tab := mem.NewTable("Scheme", "Refs/pkt", "Mlookups/s", "Line rate")
	for _, s := range schemes {
		tab.AddRow(s.Name,
			fmt.Sprintf("%.2f", s.Refs),
			fmt.Sprintf("%.1f", h.LookupsPerSecond(s.Refs)/1e6),
			fmt.Sprintf("%.1f Gbit/s", h.LineRateGbps(s.Refs)))
	}
	return fmt.Sprintf("hardware model: %.0f ns/reference, %d-byte average packets\n%s",
		h.MemoryNs, h.AvgPacketBytes, tab.String())
}
