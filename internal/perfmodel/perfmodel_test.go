package perfmodel

import (
	"math"
	"strings"
	"testing"
)

func TestLookupsPerSecond(t *testing.T) {
	h := SDRAM1999()
	// One reference per packet: 1e9 / 60 ≈ 16.7M lookups/s.
	got := h.LookupsPerSecond(1)
	if math.Abs(got-1e9/60) > 1 {
		t.Errorf("LookupsPerSecond(1) = %v", got)
	}
	// 24 refs (the Regular trie) is 24x slower.
	if r := h.LookupsPerSecond(1) / h.LookupsPerSecond(24); math.Abs(r-24) > 1e-9 {
		t.Errorf("ratio = %v, want 24", r)
	}
	if h.LookupsPerSecond(0) != 0 || h.LookupsPerSecond(-1) != 0 {
		t.Error("non-positive refs should yield 0")
	}
}

func TestLineRateGbps(t *testing.T) {
	h := Hardware{MemoryNs: 100, AvgPacketBytes: 500}
	// 1 ref/pkt -> 10M pkts/s -> 10M * 500B * 8 = 40 Gbit/s.
	if got := h.LineRateGbps(1); math.Abs(got-40) > 1e-9 {
		t.Errorf("LineRateGbps = %v, want 40", got)
	}
}

func TestTranslate(t *testing.T) {
	h := SDRAM1999()
	out := h.Translate([]Scheme{
		{Name: "Common Regular", Refs: 24.5},
		{Name: "Advance+Patricia", Refs: 1.01},
	})
	for _, want := range []string{"Common Regular", "Advance+Patricia", "Gbit/s", "60 ns"} {
		if !strings.Contains(out, want) {
			t.Errorf("Translate missing %q:\n%s", want, out)
		}
	}
	// The paper's headline, in hardware terms: Advance at ~1 ref sustains
	// ~40 Gbit/s of 300-byte packets on 60 ns memory; Regular only ~1.6.
	if g := h.LineRateGbps(1.01); g < 30 {
		t.Errorf("Advance line rate = %.1f, expected tens of Gbit/s", g)
	}
	if g := h.LineRateGbps(24.5); g > 2 {
		t.Errorf("Regular line rate = %.1f, expected under 2 Gbit/s", g)
	}
}
