package pipeline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fastpath"
	"repro/internal/lookup"
)

// warmRCU builds a warmed (preprocessed, non-learning) compiled table
// over the paper pair, so the steady-state path has no write side.
func warmRCU(tb testing.TB, p *pair) *fastpath.RCU {
	tb.Helper()
	tab := core.MustNewTable(p.tableConfig(core.Advance, lookup.NewRegular(p.rt), false))
	tab.Preprocess(p.sender.Prefixes())
	return fastpath.NewRCU(tab)
}

// TestRCUEngineWorkerZeroAllocs pins the steady-state contract the
// package documentation promises: a worker draining warmed traffic
// performs zero allocations per batch. The engine is drained first so
// its goroutines are gone and the drain body can be driven directly.
func TestRCUEngineWorkerZeroAllocs(t *testing.T) {
	p := sharedPair()
	e := NewRCUEngine(warmRCU(t, p), Config{Workers: 1, RingCap: 64, Batch: 64}, false)
	e.Drain()
	batch := make([]Packet, 64)
	for i := range batch {
		batch[i] = Packet{Dest: p.dests[i], Clue: p.clues[i], Tag: uint64(i)}
	}
	if allocs := testing.AllocsPerRun(200, func() {
		e.drain(0, batch)
	}); allocs != 0 {
		t.Fatalf("worker drain: %v allocs/op, want 0", allocs)
	}
}

// BenchmarkPipelineRing measures the raw SPSC ring: one push + one pop
// per op, single-threaded (so it is pure ring cost, no scheduling).
func BenchmarkPipelineRing(b *testing.B) {
	r := NewRing[Packet](1024)
	var p Packet
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.TryPush(p)
		r.TryPop()
	}
}

// BenchmarkPipelineThroughput measures end-to-end pipeline cost per
// packet — push, ring transfer, batched ProcessBatch against the
// snapshot — at several worker counts. ns/op is wall-clock per pushed
// packet from the producer's perspective.
func BenchmarkPipelineThroughput(b *testing.B) {
	p := sharedPair()
	rcu := warmRCU(b, p)
	for _, workers := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "workers=1", 2: "workers=2", 4: "workers=4"}[workers], func(b *testing.B) {
			e := NewRCUEngine(rcu, Config{Workers: workers, RingCap: 1024, Batch: 64}, false)
			n := len(p.dests)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := i % n
				e.Push(Packet{Dest: p.dests[j], Clue: p.clues[j], Tag: uint64(i)})
			}
			e.Drain()
			b.StopTimer()
			if st := e.Stats(); st.Processed != uint64(b.N) {
				b.Fatalf("processed %d of %d", st.Processed, b.N)
			}
		})
	}
}
