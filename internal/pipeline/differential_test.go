// Differential tests: a pipeline run must agree with a serial run of
// the same workload over the same table — outcome counts, memory
// references, telemetry totals, and learned entries. Warmed
// (preprocessed, non-learning) tables must agree exactly at any worker
// count, because processing is then order-independent; learning runs
// must agree exactly at one worker (identical order) and on the learned
// set at any worker count (the set of distinct missed clues does not
// depend on interleaving when no LearnLimit caps admission).
package pipeline

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fastpath"
	"repro/internal/fib"
	"repro/internal/ip"
	"repro/internal/lookup"
	"repro/internal/mem"
	"repro/internal/synth"
	"repro/internal/telemetry"
	"repro/internal/trie"
)

// pair is one sender→receiver hop plus a clue-carrying workload,
// mirroring the fastpath differential fixture: AT&T-1 forwarding to
// AT&T-2 over the paper-shaped synthetic universe.
type pair struct {
	sender, receiver *fib.Table
	st, rt           *trie.Trie
	dests            []ip.Addr
	clues            []int
}

// sharedPair builds the paper universe once for the whole suite —
// synthesizing it dominates test time, and no test mutates the fixture
// (tables learn into their own entry maps, never into the tries).
var sharedPair = sync.OnceValue(func() *pair { return newPair(1200) })

func newPair(nPackets int) *pair {
	routers := synth.PaperRouters(1999, 0.1)
	p := &pair{sender: routers["AT&T-1"], receiver: routers["AT&T-2"]}
	p.st, p.rt = p.sender.Trie(), p.receiver.Trie()
	w := synth.NewWorkload(23, p.sender)
	for len(p.dests) < nPackets {
		d := w.Next()
		c := 0
		if bmp, _, ok := p.st.Lookup(d, nil); ok {
			c = bmp.Clue()
		}
		p.dests = append(p.dests, d)
		p.clues = append(p.clues, c)
	}
	return p
}

// tableConfig builds the receiver-side table config for one engine ×
// method cell.
func (p *pair) tableConfig(m core.Method, e lookup.ClueEngine, learn bool) core.Config {
	return core.Config{
		Method: m, Engine: e,
		Local: p.rt, Sender: p.st.Contains,
		Learn: learn,
	}
}

// serialRun processes the workload one packet at a time through tab and
// returns outcome counts and total refs — the reference accounting a
// pipeline run must reproduce.
func serialRun(p *pair, tab *core.Table) (counts [core.NumOutcomes]uint64, refs uint64) {
	for i := range p.dests {
		var c mem.Counter
		r := tab.Process(p.dests[i], p.clues[i], &c)
		counts[r.Outcome]++
		refs += uint64(c.Count())
	}
	return counts, refs
}

// pipelineRun pushes the workload through an RCUEngine over rcu and
// returns the merged stats.
func pipelineRun(p *pair, rcu *fastpath.RCU, workers int, learn bool) Stats {
	e := NewRCUEngine(rcu, Config{Workers: workers, RingCap: 64, Batch: 16}, learn)
	for i := range p.dests {
		e.Push(Packet{Dest: p.dests[i], Clue: p.clues[i], Tag: uint64(i)})
	}
	e.Drain()
	return e.Stats()
}

// TestPipelineMatchesSerialWarm drives every engine × method cell over a
// warmed (preprocessed, non-learning) table, serially and through a
// 4-worker pipeline, and requires exact agreement on outcome counts,
// refs, and telemetry totals. On a warmed table every packet's result is
// independent of every other packet, so sharding and interleaving must
// not change any aggregate.
func TestPipelineMatchesSerialWarm(t *testing.T) {
	p := sharedPair()
	for _, eng := range lookup.All(p.rt) {
		for _, m := range []core.Method{core.Simple, core.Advance} {
			t.Run(m.String()+"/"+eng.Name(), func(t *testing.T) {
				serialTel := telemetry.NewPacketMetrics(telemetry.NewRegistry(), "serial", core.OutcomeLabels())
				serialTab := core.MustNewTable(p.tableConfig(m, eng, false))
				serialTab.Preprocess(p.sender.Prefixes())
				serialTab.SetTelemetry(serialTel)
				wantCounts, wantRefs := serialRun(p, serialTab)

				pipeTel := telemetry.NewPacketMetrics(telemetry.NewRegistry(), "pipe", core.OutcomeLabels())
				pipeTab := core.MustNewTable(p.tableConfig(m, eng, false))
				pipeTab.Preprocess(p.sender.Prefixes())
				pipeTab.SetTelemetry(pipeTel)
				st := pipelineRun(p, fastpath.NewRCU(pipeTab), 4, false)

				if st.Processed != uint64(len(p.dests)) {
					t.Fatalf("pipeline processed %d of %d", st.Processed, len(p.dests))
				}
				if st.Outcomes != wantCounts {
					t.Fatalf("outcome counts diverged:\nserial   %v\npipeline %v", wantCounts, st.Outcomes)
				}
				if st.Refs != wantRefs {
					t.Fatalf("refs diverged: serial %d, pipeline %d", wantRefs, st.Refs)
				}
				// Telemetry recorded inside Process must agree too: totals,
				// refs, and every per-outcome counter.
				if serialTel.Packets() != pipeTel.Packets() || serialTel.Refs() != pipeTel.Refs() {
					t.Fatalf("telemetry totals diverged: serial %d pkts/%d refs, pipeline %d pkts/%d refs",
						serialTel.Packets(), serialTel.Refs(), pipeTel.Packets(), pipeTel.Refs())
				}
				for o := 0; o < core.NumOutcomes; o++ {
					if serialTel.OutcomeCount(o) != pipeTel.OutcomeCount(o) {
						t.Fatalf("telemetry outcome %v diverged: serial %d, pipeline %d",
							core.Outcome(o), serialTel.OutcomeCount(o), pipeTel.OutcomeCount(o))
					}
				}
			})
		}
	}
}

// TestPipelineSingleWorkerLearning runs a cold learning table serially
// and through a 1-worker learning pipeline. One worker drains in push
// order, so the runs are packet-for-packet identical and everything —
// outcome counts, refs, and the learned table — must match exactly.
func TestPipelineSingleWorkerLearning(t *testing.T) {
	p := sharedPair()
	for _, m := range []core.Method{core.Simple, core.Advance} {
		t.Run(m.String(), func(t *testing.T) {
			ref := core.MustNewTable(p.tableConfig(m, lookup.NewRegular(p.rt), true))
			wantCounts, wantRefs := serialRun(p, ref)

			live := core.MustNewTable(p.tableConfig(m, lookup.NewRegular(p.rt), true))
			rcu := fastpath.NewRCU(live)
			st := pipelineRun(p, rcu, 1, true)

			if st.Outcomes != wantCounts {
				t.Fatalf("outcome counts diverged:\nserial   %v\npipeline %v", wantCounts, st.Outcomes)
			}
			if st.Refs != wantRefs {
				t.Fatalf("refs diverged: serial %d, pipeline %d", wantRefs, st.Refs)
			}
			if rcu.Len() != ref.Len() || rcu.Learned() != ref.Learned() {
				t.Fatalf("learned tables diverged: serial %d entries (%d learned), pipeline %d (%d)",
					ref.Len(), ref.Learned(), rcu.Len(), rcu.Learned())
			}
		})
	}
}

// TestPipelineLearningSetEquality runs a cold learning pipeline at
// several worker counts against a serial reference. Interleaving across
// flows changes which packet of a clue misses first, so per-outcome
// counts may legitimately differ — but with no LearnLimit the final
// learned set is exactly the distinct valid clues of the workload,
// independent of order. The table sizes must therefore agree, and the
// pipeline must still process every packet.
func TestPipelineLearningSetEquality(t *testing.T) {
	p := sharedPair()
	for _, eng := range lookup.All(p.rt) {
		t.Run(eng.Name(), func(t *testing.T) {
			ref := core.MustNewTable(p.tableConfig(core.Advance, eng, true))
			serialRun(p, ref)
			for _, workers := range []int{2, 4} {
				live := core.MustNewTable(p.tableConfig(core.Advance, eng, true))
				rcu := fastpath.NewRCU(live)
				st := pipelineRun(p, rcu, workers, true)
				if st.Processed != uint64(len(p.dests)) {
					t.Fatalf("workers=%d: processed %d of %d", workers, st.Processed, len(p.dests))
				}
				if rcu.Len() != ref.Len() {
					t.Fatalf("workers=%d: learned set diverged: serial %d entries, pipeline %d",
						workers, ref.Len(), rcu.Len())
				}
			}
		})
	}
}
