package pipeline

// Egress groups per-item output by destination key so a worker draining
// a ring batch can hand each downstream peer one batched write instead
// of one syscall per item. It is the egress-side complement of the
// ingress rings: a worker Adds each produced frame under its next-hop
// key while processing a drained batch, then Flushes once, and the
// flush callback sees every key's frames contiguously.
//
// All storage is reused across batches: after the first few batches the
// steady state allocates nothing. An Egress is single-goroutine, like a
// ring's consumer side; create one per worker.
type Egress[K comparable, T any] struct {
	flush func(K, []T)
	max   int
	byKey map[K][]T
	order []K // keys with pending items, in first-Add order
}

// NewEgress returns an Egress delivering batches to flush. max bounds a
// single key's batch: adding the max-th item flushes that key
// immediately, so a buffered frame never waits behind more than max-1
// others. max <= 0 means unbounded (explicit Flush only).
func NewEgress[K comparable, T any](max int, flush func(K, []T)) *Egress[K, T] {
	return &Egress[K, T]{
		flush: flush,
		max:   max,
		byKey: make(map[K][]T),
	}
}

// Add buffers v under k, flushing k's batch if it reaches the bound.
func (e *Egress[K, T]) Add(k K, v T) {
	buf := e.byKey[k]
	if len(buf) == 0 {
		e.order = append(e.order, k)
	}
	buf = append(buf, v)
	if e.max > 0 && len(buf) >= e.max {
		e.flush(k, buf)
		e.byKey[k] = buf[:0]
		e.dropKey(k)
		return
	}
	e.byKey[k] = buf
}

// Flush delivers every pending batch, in first-Add key order, and
// retains all capacity for the next batch.
func (e *Egress[K, T]) Flush() {
	for _, k := range e.order {
		if buf := e.byKey[k]; len(buf) > 0 {
			e.flush(k, buf)
			e.byKey[k] = buf[:0]
		}
	}
	e.order = e.order[:0]
}

// Pending returns the number of buffered items across all keys.
func (e *Egress[K, T]) Pending() int {
	n := 0
	for _, buf := range e.byKey {
		n += len(buf)
	}
	return n
}

// dropKey removes k from the pending-key order after an auto-flush.
func (e *Egress[K, T]) dropKey(k K) {
	for i, key := range e.order {
		if key == k {
			e.order = append(e.order[:i], e.order[i+1:]...)
			return
		}
	}
}
