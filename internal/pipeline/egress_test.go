package pipeline

import (
	"fmt"
	"testing"
)

func TestEgressGroupsByKey(t *testing.T) {
	var got []string
	e := NewEgress[string, int](0, func(k string, vs []int) {
		got = append(got, fmt.Sprint(k, vs))
	})
	e.Add("a", 1)
	e.Add("b", 2)
	e.Add("a", 3)
	e.Add("c", 4)
	if e.Pending() != 4 {
		t.Fatalf("Pending = %d, want 4", e.Pending())
	}
	e.Flush()
	want := []string{"a[1 3]", "b[2]", "c[4]"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("flush order/content = %v, want %v", got, want)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending after Flush = %d", e.Pending())
	}
	// Second cycle reuses storage and the same ordering rule.
	got = nil
	e.Add("b", 5)
	e.Add("a", 6)
	e.Flush()
	want = []string{"b[5]", "a[6]"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("second flush = %v, want %v", got, want)
	}
}

func TestEgressMaxAutoFlush(t *testing.T) {
	var flushes [][]int
	e := NewEgress[int, int](3, func(_ int, vs []int) {
		flushes = append(flushes, append([]int(nil), vs...))
	})
	for i := 1; i <= 7; i++ {
		e.Add(0, i)
	}
	// 7 adds at max 3: two auto-flushes of 3, one item pending.
	if len(flushes) != 2 {
		t.Fatalf("auto-flushes = %d, want 2", len(flushes))
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.Flush()
	if len(flushes) != 3 || len(flushes[2]) != 1 || flushes[2][0] != 7 {
		t.Fatalf("final flush = %v", flushes)
	}
	// A key auto-flushed away must not leave a stale order entry.
	e.Flush()
	if len(flushes) != 3 {
		t.Fatalf("empty Flush delivered something: %v", flushes)
	}
}

func TestEgressFlushEmpty(t *testing.T) {
	calls := 0
	e := NewEgress[string, int](0, func(string, []int) { calls++ })
	e.Flush()
	if calls != 0 {
		t.Fatalf("flush callback ran %d times on an empty Egress", calls)
	}
}

// TestEgressSteadyStateAllocs pins the reuse contract: after warmup,
// Add+Flush cycles allocate nothing.
func TestEgressSteadyStateAllocs(t *testing.T) {
	e := NewEgress[int, int](0, func(int, []int) {})
	cycle := func() {
		for k := 0; k < 4; k++ {
			for v := 0; v < 16; v++ {
				e.Add(k, v)
			}
		}
		e.Flush()
	}
	cycle() // warmup grows the map and slices
	cycle()
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Fatalf("steady-state Add/Flush allocates %.1f per cycle, want 0", avg)
	}
}
