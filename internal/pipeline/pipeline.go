package pipeline

import (
	"runtime"
	"sync"

	"repro/internal/ip"
)

// Packet is one unit of pipeline work: a destination, the clue it
// carries (NoClue, represented as any negative value, when none), and a
// caller-defined tag (typically an index into the caller's workload, so
// batch processors can recover per-packet context without the pipeline
// threading it through).
type Packet struct {
	Dest ip.Addr
	Clue int
	Tag  uint64
}

// Config sizes an Engine. The zero value of every field selects a
// sensible default.
type Config struct {
	// Workers is the number of worker goroutines (and rings); default
	// GOMAXPROCS.
	Workers int
	// RingCap is the per-worker ring capacity, rounded up to a power of
	// two; default 1024.
	RingCap int
	// Batch is the largest number of packets a worker hands its
	// processor at once; default 64.
	Batch int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.RingCap <= 0 {
		c.RingCap = 1024
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	return c
}

// Engine fans packets out to workers over per-worker SPSC rings,
// sharded by destination hash so a flow's packets stay on one worker in
// arrival order. The caller's goroutine is the single producer (Push is
// not safe for concurrent use); each worker goroutine is the single
// consumer of its own ring, so no queue ever sees two writers.
type Engine struct {
	cfg   Config
	rings []*Ring[Packet]
	proc  func(worker int, batch []Packet)
	wg    sync.WaitGroup
}

// New starts an engine whose workers hand every drained batch to proc.
// proc runs on the worker goroutine and must be safe to call
// concurrently with the other workers' proc invocations; within one
// worker, calls are strictly sequential in push order for that shard.
func New(cfg Config, proc func(worker int, batch []Packet)) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{cfg: cfg, proc: proc, rings: make([]*Ring[Packet], cfg.Workers)}
	for i := range e.rings {
		e.rings[i] = NewRing[Packet](cfg.RingCap)
	}
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker(i)
	}
	return e
}

// Workers returns the worker count the engine is running with.
func (e *Engine) Workers() int { return e.cfg.Workers }

// Shard returns the worker index a destination hashes to — exported so
// tests can pin the flow-affinity contract.
//
//cluevet:hotpath
func (e *Engine) Shard(dest ip.Addr) int {
	hi, lo := dest.Halves()
	// murmur3-style finalizer over a golden-ratio fold, mirroring the
	// fastpath slot hash; the low bits index the worker.
	x := hi ^ (lo * 0x9E3779B97F4A7C15)
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 29
	return int(x % uint64(e.cfg.Workers))
}

// Push routes p to its destination's worker, blocking (spin + yield)
// while that worker's ring is full — see Ring.Push for the
// backpressure contract. Single producer only.
//
//cluevet:hotpath
func (e *Engine) Push(p Packet) {
	e.rings[e.Shard(p.Dest)].Push(p)
}

// Close signals end of input: workers drain their rings and exit.
// Push must not be called after Close.
func (e *Engine) Close() {
	for _, r := range e.rings {
		r.Close()
	}
}

// Wait blocks until every worker has drained its ring and returned.
// Call after Close.
func (e *Engine) Wait() { e.wg.Wait() }

// Drain is Close followed by Wait.
func (e *Engine) Drain() {
	e.Close()
	e.Wait()
}

// worker drains its ring in batches until the ring is closed and empty.
func (e *Engine) worker(id int) {
	defer e.wg.Done()
	r := e.rings[id]
	buf := make([]Packet, e.cfg.Batch)
	for {
		n := r.PopBatch(buf)
		if n == 0 {
			if r.Drained() {
				return
			}
			runtime.Gosched()
			continue
		}
		e.proc(id, buf[:n])
	}
}
