package pipeline

import (
	"testing"
	"time"

	"repro/internal/ip"
)

// TestEngineDistributesAndOrders pins the engine's two delivery
// guarantees: every pushed packet reaches exactly one worker — the one
// its destination shards to — and packets of the same flow arrive at
// that worker in push order.
func TestEngineDistributesAndOrders(t *testing.T) {
	const (
		workers = 4
		flows   = 64
		total   = 20000
	)
	seqs := make([][]Packet, workers)
	e := New(Config{Workers: workers, RingCap: 32, Batch: 8}, func(w int, batch []Packet) {
		seqs[w] = append(seqs[w], batch...)
	})
	dests := make([]ip.Addr, flows)
	for i := range dests {
		dests[i] = ip.AddrFrom32(0x0a000000 | uint32(i)<<8 | 1)
	}
	for i := 0; i < total; i++ {
		e.Push(Packet{Dest: dests[i%flows], Clue: i % 24, Tag: uint64(i)})
	}
	e.Drain()

	got := 0
	lastTag := make(map[ip.Addr]uint64, flows)
	flowWorker := make(map[ip.Addr]int, flows)
	for w, seq := range seqs {
		got += len(seq)
		for _, p := range seq {
			if want := e.Shard(p.Dest); want != w {
				t.Fatalf("dest %v on worker %d, shards to %d", p.Dest, w, want)
			}
			if prev, ok := flowWorker[p.Dest]; ok && prev != w {
				t.Fatalf("dest %v split across workers %d and %d", p.Dest, prev, w)
			}
			flowWorker[p.Dest] = w
			if prev, ok := lastTag[p.Dest]; ok && p.Tag <= prev {
				t.Fatalf("dest %v: tag %d arrived after %d (flow reordered)", p.Dest, p.Tag, prev)
			}
			lastTag[p.Dest] = p.Tag
		}
	}
	if got != total {
		t.Fatalf("workers saw %d packets, pushed %d", got, total)
	}
}

// TestEngineShardStable pins that Shard is a pure function of the
// destination and always lands in range.
func TestEngineShardStable(t *testing.T) {
	e := New(Config{Workers: 8, RingCap: 4}, func(int, []Packet) {})
	defer e.Drain()
	for i := 0; i < 1000; i++ {
		d := ip.AddrFrom32(uint32(i) * 2654435761)
		s := e.Shard(d)
		if s < 0 || s >= 8 {
			t.Fatalf("Shard(%v) = %d out of [0,8)", d, s)
		}
		if again := e.Shard(d); again != s {
			t.Fatalf("Shard(%v) unstable: %d then %d", d, s, again)
		}
	}
}

// TestEngineShardSpreads is a sanity check that the destination hash
// actually spreads a /24-style workload over the workers instead of
// pinning everything to one shard.
func TestEngineShardSpreads(t *testing.T) {
	const workers = 4
	e := New(Config{Workers: workers, RingCap: 4}, func(int, []Packet) {})
	defer e.Drain()
	var hist [workers]int
	for i := 0; i < 4096; i++ {
		hist[e.Shard(ip.AddrFrom32(0xc0a80000|uint32(i)))]++
	}
	for w, n := range hist {
		// Fair share is 1024; accept anything within 2x either way.
		if n < 512 || n > 2048 {
			t.Fatalf("worker %d got %d of 4096 dests; histogram %v", w, n, hist)
		}
	}
}

// TestEngineBackpressure pins the no-drop contract: with tiny rings and
// a deliberately slow worker, Push blocks rather than dropping, and
// every packet is still processed.
func TestEngineBackpressure(t *testing.T) {
	const total = 500
	var got int
	e := New(Config{Workers: 2, RingCap: 2, Batch: 1}, func(w int, batch []Packet) {
		time.Sleep(50 * time.Microsecond)
		got += len(batch) // wrong if workers>1 touched it, but see below
	})
	// got is written by two workers; guard by funneling all flows to one
	// worker: a single destination shards to a single ring.
	d := ip.AddrFrom4(10, 1, 2, 3)
	for i := 0; i < total; i++ {
		e.Push(Packet{Dest: d, Tag: uint64(i)})
	}
	e.Drain()
	if got != total {
		t.Fatalf("processed %d of %d packets through a full ring", got, total)
	}
}

// TestEngineBatchBound pins that workers never hand proc more than
// Config.Batch packets at once.
func TestEngineBatchBound(t *testing.T) {
	const batch = 8
	maxSeen := 0
	e := New(Config{Workers: 1, RingCap: 256, Batch: batch}, func(w int, b []Packet) {
		if len(b) > maxSeen {
			maxSeen = len(b)
		}
		time.Sleep(20 * time.Microsecond) // let the ring fill behind us
	})
	for i := 0; i < 2000; i++ {
		e.Push(Packet{Dest: ip.AddrFrom32(uint32(i)), Tag: uint64(i)})
	}
	e.Drain()
	if maxSeen == 0 || maxSeen > batch {
		t.Fatalf("largest batch seen = %d, want in (0,%d]", maxSeen, batch)
	}
}

// TestConfigDefaults pins withDefaults.
func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Workers < 1 || c.RingCap != 1024 || c.Batch != 64 {
		t.Fatalf("zero Config resolved to %+v", c)
	}
	c = Config{Workers: 3, RingCap: 16, Batch: 4}.withDefaults()
	if c.Workers != 3 || c.RingCap != 16 || c.Batch != 4 {
		t.Fatalf("explicit Config altered: %+v", c)
	}
}
