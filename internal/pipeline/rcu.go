package pipeline

import (
	"time"

	"repro/internal/core"
	"repro/internal/fastpath"
	"repro/internal/ip"
	"repro/internal/mem"
)

// rcuWorker is one worker's scratch state: pre-allocated batch arrays
// for ProcessBatch, an outcome-count line, and the busy-time clock.
// The counts array is exactly one cache line (core.NumOutcomes = 8
// uint64 words) and each worker owns its own struct, so counting an
// outcome is a plain increment with no sharing.
//
//cluevet:padded
type rcuWorker struct {
	dests     []ip.Addr
	clues     []int
	out       []core.Result
	cnt       mem.Counter
	counts    [core.NumOutcomes]uint64
	processed uint64
	busyNs    int64
	_         [96]byte // rounds the struct to 256 bytes: whole cache lines, so slice neighbors never share one
}

// Stats is the merged accounting of a finished (or quiescent) RCUEngine
// run.
type Stats struct {
	// Processed is the number of packets drained through ProcessBatch.
	Processed uint64
	// Outcomes counts packets by clue outcome ordinal (core.Outcome).
	Outcomes [core.NumOutcomes]uint64
	// Refs is the total memory references charged (the paper's model).
	Refs uint64
	// BusyNs is the summed wall-clock time workers spent processing
	// batches (not waiting on their rings). Per-worker busy time is what
	// the cluebench scaling sweep turns into a capacity estimate.
	BusyNs int64
	// WorkerBusyNs is BusyNs broken out per worker.
	WorkerBusyNs []int64
	// WorkerProcessed is Processed broken out per worker.
	WorkerProcessed []uint64
}

// RCUEngine is an Engine whose workers drain batches through
// fastpath.RCU.ProcessBatch against the current snapshot. Outcomes and
// references are counted per worker and merged at Stats time; any
// telemetry attached to the underlying table records per packet inside
// Process exactly as it does on the serial path, so a scrape during a
// pipeline run and one during a serial run see the same counters.
//
// When learn is enabled, a packet whose outcome is OutcomeMiss reports
// its clue to RCU.Learn — the same report the serial netsim/clued paths
// make — off the read path, through the RCU writer mutex. Destination
// sharding keeps all packets of a flow on one worker, so learning for a
// given destination observes its packets in arrival order.
type RCUEngine struct {
	*Engine
	rcu     *fastpath.RCU
	learn   bool
	workers []rcuWorker
}

// NewRCUEngine starts a pipeline over rcu. When learn is true, misses
// are reported to rcu.Learn.
func NewRCUEngine(rcu *fastpath.RCU, cfg Config, learn bool) *RCUEngine {
	cfg = cfg.withDefaults()
	e := &RCUEngine{rcu: rcu, learn: learn, workers: make([]rcuWorker, cfg.Workers)}
	for i := range e.workers {
		w := &e.workers[i]
		w.dests = make([]ip.Addr, cfg.Batch)
		w.clues = make([]int, cfg.Batch)
		w.out = make([]core.Result, cfg.Batch)
	}
	e.Engine = New(cfg, e.drain)
	return e
}

// drain is the worker body: unpack the batch into the pre-allocated
// arrays, process against one snapshot, count outcomes, report misses.
// Steady state (no misses) performs zero allocations — pinned by
// TestRCUEngineWorkerZeroAllocs.
//
// Learning engines take the per-packet path instead: a learned entry
// must be visible to the next packet of the flow (the serial contract
// the differential tests pin), and ProcessBatch resolves the snapshot
// once for the whole batch, which would hide an entry learned from an
// earlier packet in the same batch. Learning is the transient phase;
// the batch path is the steady state.
//
//cluevet:hotpath
func (e *RCUEngine) drain(id int, batch []Packet) {
	w := &e.workers[id]
	start := time.Now()
	n := len(batch)
	if e.learn {
		for i := 0; i < n; i++ {
			r := e.rcu.Process(batch[i].Dest, batch[i].Clue, &w.cnt)
			if r.Outcome >= 0 && int(r.Outcome) < core.NumOutcomes {
				w.counts[r.Outcome]++
			}
			if r.Outcome == core.OutcomeMiss {
				e.rcu.Learn(batch[i].Dest, batch[i].Clue)
			}
		}
	} else {
		for i := 0; i < n; i++ {
			w.dests[i] = batch[i].Dest
			w.clues[i] = batch[i].Clue
		}
		n = e.rcu.ProcessBatch(w.dests[:n], w.clues[:n], w.out[:n], &w.cnt)
		for i := 0; i < n; i++ {
			o := w.out[i].Outcome
			if o >= 0 && int(o) < core.NumOutcomes {
				w.counts[o]++
			}
		}
	}
	w.processed += uint64(n)
	w.busyNs += time.Since(start).Nanoseconds()
}

// Stats merges the per-worker accounting. Call after Wait (or at any
// quiescent point); merging during a run reads worker-local state that
// is not synchronized.
func (e *RCUEngine) Stats() Stats {
	var s Stats
	s.WorkerBusyNs = make([]int64, len(e.workers))
	s.WorkerProcessed = make([]uint64, len(e.workers))
	for i := range e.workers {
		w := &e.workers[i]
		s.Processed += w.processed
		s.BusyNs += w.busyNs
		s.Refs += uint64(w.cnt.Count())
		s.WorkerBusyNs[i] = w.busyNs
		s.WorkerProcessed[i] = w.processed
		for o, c := range w.counts {
			s.Outcomes[o] += c
		}
	}
	return s
}
