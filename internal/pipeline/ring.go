// Package pipeline is the multi-core packet engine: sharded single-
// producer/single-consumer ring queues feeding workers that drain
// packets in batches against the current fastpath RCU snapshot, so
// aggregate packets/sec scales with cores instead of being capped by
// one goroutine.
//
// The design follows the clue-table structure itself. Compiled
// snapshots (internal/fastpath) are immutable and read with a single
// atomic pointer load, so any number of workers can process packets
// against the same table with zero coordination — the scheme is
// embarrassingly parallel on the read side. What needs care is the
// plumbing around it:
//
//   - Queues are fixed-size power-of-two SPSC rings with atomic head
//     and tail cursors on separate cache lines: a push is one store
//     into a pre-allocated slot plus one atomic add, a pop likewise —
//     no mutex, no channel, no allocation in steady state.
//   - Packets are sharded to workers by a hash of the destination
//     address, so all packets of a flow (same destination) stay on one
//     worker and per-flow clue learning observes them in arrival
//     order.
//   - Workers drain in batches (amortizing ring accesses and snapshot
//     loads across up to Config.Batch packets) and count outcomes into
//     per-worker cache-line-sized arrays; totals are merged once at
//     Wait, and per-packet telemetry rides the existing sharded atomic
//     counters, so nothing on the hot path contends.
//
// Backpressure is blocking: when a worker's ring is full, Push spins
// briefly and yields until a slot frees. The pipeline never drops a
// packet and never queues unboundedly; a slow worker slows the
// producer, which is the only load-shedding policy that keeps the
// differential tests' "pipeline == serial" accounting exact.
package pipeline

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// pad is inserted between the ring cursors so the producer's tail line
// and the consumer's head line never false-share.
type pad [56]byte

// Ring is a fixed-capacity single-producer/single-consumer queue.
// Exactly one goroutine may push (the producer) and exactly one may pop
// (the consumer); under that contract every operation is wait-free and
// allocation-free. The zero value is not usable; call NewRing.
//
//cluevet:padded
type Ring[T any] struct {
	buf    []T
	mask   uint64
	_      pad
	head   atomic.Uint64 // next slot to pop; written only by the consumer
	_      pad
	tail   atomic.Uint64 // next slot to push; written only by the producer
	_      pad
	closed atomic.Bool
}

// NewRing creates a ring with the given capacity, rounded up to a power
// of two (so cursor-to-slot mapping is a mask) and clamped to at least 2.
func NewRing[T any](capacity int) *Ring[T] {
	size := 2
	for size < capacity {
		size <<= 1
	}
	return &Ring[T]{buf: make([]T, size), mask: uint64(size - 1)}
}

// Cap returns the ring's capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the number of queued items. Exact when called by the
// producer or the consumer; a consistent snapshot otherwise.
func (r *Ring[T]) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// TryPush appends v and reports success; it fails when the ring is full
// or closed. Producer-side only.
//
//cluevet:hotpath
func (r *Ring[T]) TryPush(v T) bool {
	if r.closed.Load() {
		return false
	}
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	return true
}

// Push appends v, spinning and yielding while the ring is full — the
// pipeline's backpressure: a full ring slows the producer down rather
// than dropping or growing. It returns false only when the ring is
// closed. Producer-side only.
//
//cluevet:hotpath
func (r *Ring[T]) Push(v T) bool {
	for spins := 0; ; spins++ {
		if r.TryPush(v) {
			return true
		}
		if r.closed.Load() {
			return false
		}
		if spins > 16 {
			runtime.Gosched()
		}
	}
}

// TryPop removes and returns the oldest item. Consumer-side only.
//
//cluevet:hotpath
func (r *Ring[T]) TryPop() (T, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		var zero T
		return zero, false
	}
	v := r.buf[h&r.mask]
	r.head.Store(h + 1)
	return v, true
}

// PopBatch moves up to len(dst) items into dst and returns how many it
// moved. Consumer-side only.
//
//cluevet:hotpath
func (r *Ring[T]) PopBatch(dst []T) int {
	h := r.head.Load()
	n := int(r.tail.Load() - h)
	if n == 0 {
		return 0
	}
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = r.buf[(h+uint64(i))&r.mask]
	}
	r.head.Store(h + uint64(n))
	return n
}

// Close marks the ring closed: subsequent pushes are rejected, and the
// consumer drains what remains. Closing an already-closed ring is a
// no-op.
func (r *Ring[T]) Close() { r.closed.Store(true) }

// Closed reports whether Close was called (items may remain queued).
func (r *Ring[T]) Closed() bool { return r.closed.Load() }

// Drained reports end-of-stream for the consumer: the ring is closed
// and empty. The order matters — closed is checked first, so a true
// result cannot race a final push (the producer pushes before closing,
// and the tail store happens-before the closed store).
func (r *Ring[T]) Drained() bool {
	if !r.closed.Load() {
		return false
	}
	return r.tail.Load() == r.head.Load()
}

// String describes the ring for diagnostics.
func (r *Ring[T]) String() string {
	return fmt.Sprintf("ring(cap=%d len=%d closed=%v)", r.Cap(), r.Len(), r.Closed())
}
