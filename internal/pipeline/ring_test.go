package pipeline

import (
	"runtime"
	"sync"
	"testing"
)

// TestRingTableDriven pins the SPSC ring's single-threaded semantics:
// emptiness, fullness, wraparound, and close behavior.
func TestRingTableDriven(t *testing.T) {
	type op struct {
		do       string // "push", "pop", "close", "popbatch"
		v        int    // value to push
		n        int    // batch size for popbatch
		want     int    // popped value / batch count
		wantOK   bool   // push/pop success
		wantLen  int    // ring length after the op (-1: skip)
		wantDone bool   // Drained after the op
	}
	cases := []struct {
		name string
		cap  int
		ops  []op
	}{
		{
			name: "empty pop fails",
			cap:  4,
			ops: []op{
				{do: "pop", wantOK: false, wantLen: 0},
			},
		},
		{
			name: "push then pop returns the value",
			cap:  4,
			ops: []op{
				{do: "push", v: 42, wantOK: true, wantLen: 1},
				{do: "pop", want: 42, wantOK: true, wantLen: 0},
			},
		},
		{
			name: "fifo order",
			cap:  4,
			ops: []op{
				{do: "push", v: 1, wantOK: true, wantLen: 1},
				{do: "push", v: 2, wantOK: true, wantLen: 2},
				{do: "push", v: 3, wantOK: true, wantLen: 3},
				{do: "pop", want: 1, wantOK: true, wantLen: 2},
				{do: "pop", want: 2, wantOK: true, wantLen: 1},
				{do: "pop", want: 3, wantOK: true, wantLen: 0},
			},
		},
		{
			name: "full push fails",
			cap:  2,
			ops: []op{
				{do: "push", v: 1, wantOK: true, wantLen: 1},
				{do: "push", v: 2, wantOK: true, wantLen: 2},
				{do: "push", v: 3, wantOK: false, wantLen: 2},
				{do: "pop", want: 1, wantOK: true, wantLen: 1},
				{do: "push", v: 3, wantOK: true, wantLen: 2},
			},
		},
		{
			name: "wraparound keeps fifo across the boundary",
			cap:  2,
			ops: []op{
				{do: "push", v: 1, wantOK: true, wantLen: 1},
				{do: "push", v: 2, wantOK: true, wantLen: 2},
				{do: "pop", want: 1, wantOK: true, wantLen: 1},
				{do: "push", v: 3, wantOK: true, wantLen: 2}, // cursor wraps
				{do: "pop", want: 2, wantOK: true, wantLen: 1},
				{do: "push", v: 4, wantOK: true, wantLen: 2},
				{do: "pop", want: 3, wantOK: true, wantLen: 1},
				{do: "pop", want: 4, wantOK: true, wantLen: 0},
			},
		},
		{
			name: "close rejects pushes, consumer drains the rest",
			cap:  4,
			ops: []op{
				{do: "push", v: 1, wantOK: true, wantLen: 1},
				{do: "push", v: 2, wantOK: true, wantLen: 2},
				{do: "close", wantLen: 2, wantDone: false},
				{do: "push", v: 3, wantOK: false, wantLen: 2},
				{do: "pop", want: 1, wantOK: true, wantLen: 1, wantDone: false},
				{do: "pop", want: 2, wantOK: true, wantLen: 0, wantDone: true},
				{do: "pop", wantOK: false, wantLen: 0, wantDone: true},
			},
		},
		{
			name: "close on empty ring drains immediately",
			cap:  4,
			ops: []op{
				{do: "close", wantLen: 0, wantDone: true},
			},
		},
		{
			name: "popbatch drains in order and stops at the batch size",
			cap:  8,
			ops: []op{
				{do: "push", v: 10, wantOK: true, wantLen: 1},
				{do: "push", v: 11, wantOK: true, wantLen: 2},
				{do: "push", v: 12, wantOK: true, wantLen: 3},
				{do: "popbatch", n: 2, want: 2, wantLen: 1},
				{do: "pop", want: 12, wantOK: true, wantLen: 0},
				{do: "popbatch", n: 2, want: 0, wantLen: 0},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRing[int](tc.cap)
			base := -1
			for i, o := range tc.ops {
				switch o.do {
				case "push":
					if ok := r.TryPush(o.v); ok != o.wantOK {
						t.Fatalf("op %d: TryPush(%d) = %v, want %v", i, o.v, ok, o.wantOK)
					}
				case "pop":
					v, ok := r.TryPop()
					if ok != o.wantOK {
						t.Fatalf("op %d: TryPop ok = %v, want %v", i, ok, o.wantOK)
					}
					if ok && v != o.want {
						t.Fatalf("op %d: TryPop = %d, want %d", i, v, o.want)
					}
				case "popbatch":
					dst := make([]int, o.n)
					got := r.PopBatch(dst)
					if got != o.want {
						t.Fatalf("op %d: PopBatch = %d, want %d", i, got, o.want)
					}
					// Batch contents continue the FIFO sequence from the
					// last popped value.
					for j := 0; j < got; j++ {
						if base >= 0 && dst[j] <= base {
							t.Fatalf("op %d: PopBatch[%d] = %d out of order (last %d)", i, j, dst[j], base)
						}
						base = dst[j]
					}
				case "close":
					r.Close()
				}
				if o.wantLen >= 0 && r.Len() != o.wantLen {
					t.Fatalf("op %d (%s): Len = %d, want %d", i, o.do, r.Len(), o.wantLen)
				}
				if o.wantDone != r.Drained() && (o.do == "close" || o.do == "pop" || o.do == "popbatch") {
					t.Fatalf("op %d (%s): Drained = %v, want %v", i, o.do, r.Drained(), o.wantDone)
				}
			}
		})
	}
}

// TestRingCapacityRounding pins NewRing's power-of-two rounding and the
// minimum capacity.
func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}, {1024, 1024},
	} {
		if got := NewRing[byte](tc.in).Cap(); got != tc.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestRingBlockingPushUnblocksOnClose pins that a producer blocked on a
// full ring returns false when the consumer side closes it, instead of
// spinning forever.
func TestRingBlockingPushUnblocksOnClose(t *testing.T) {
	r := NewRing[int](2)
	if !r.Push(1) || !r.Push(2) {
		t.Fatal("setup pushes failed")
	}
	done := make(chan bool)
	go func() { done <- r.Push(3) }()
	r.Close()
	if ok := <-done; ok {
		t.Fatal("Push on a closed full ring reported success")
	}
}

// TestRingStress races one producer against one consumer over a small
// ring (forcing constant wraparound and full/empty transitions) and
// verifies every value arrives exactly once, in order. Run under -race
// in CI at -cpu 1,2,4.
func TestRingStress(t *testing.T) {
	const total = 200000
	r := NewRing[uint64](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < total; i++ {
			if !r.Push(i) {
				t.Error("push failed mid-stream")
				return
			}
		}
		r.Close()
	}()
	next := uint64(0)
	buf := make([]uint64, 17) // odd batch size: batch boundaries drift over the wrap point
	for {
		n := r.PopBatch(buf)
		if n == 0 {
			if r.Drained() {
				break
			}
			runtime.Gosched() // single-CPU hosts: let the producer run
			continue
		}
		for i := 0; i < n; i++ {
			if buf[i] != next {
				t.Fatalf("got %d, want %d (reordered or lost)", buf[i], next)
			}
			next++
		}
	}
	wg.Wait()
	if next != total {
		t.Fatalf("consumed %d of %d values", next, total)
	}
}

// TestRingStressTryPop is the single-item flavor of the stress test, so
// both consumer entry points see the race detector.
func TestRingStressTryPop(t *testing.T) {
	const total = 100000
	r := NewRing[uint64](8)
	go func() {
		for i := uint64(0); i < total; i++ {
			r.Push(i)
		}
		r.Close()
	}()
	next := uint64(0)
	for {
		v, ok := r.TryPop()
		if !ok {
			if r.Drained() {
				break
			}
			runtime.Gosched()
			continue
		}
		if v != next {
			t.Fatalf("got %d, want %d", v, next)
		}
		next++
	}
	if next != total {
		t.Fatalf("consumed %d of %d values", next, total)
	}
}

// TestRingZeroAllocs pins the steady-state allocation contract: push and
// pop (single and batched) allocate nothing.
func TestRingZeroAllocs(t *testing.T) {
	r := NewRing[Packet](64)
	var p Packet
	if allocs := testing.AllocsPerRun(1000, func() {
		r.TryPush(p)
		r.TryPop()
	}); allocs != 0 {
		t.Errorf("TryPush/TryPop: %v allocs/op, want 0", allocs)
	}
	buf := make([]Packet, 16)
	if allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 16; i++ {
			r.TryPush(p)
		}
		r.PopBatch(buf)
	}); allocs != 0 {
		t.Errorf("Push/PopBatch: %v allocs/op, want 0", allocs)
	}
}
