package routing

import (
	"fmt"

	"repro/internal/fastpath"
	"repro/internal/fib"
	"repro/internal/ip"
)

// RemoveOrigin withdraws an origination: the prefix disappears from the
// next ComputeTables result network-wide (all scoped variants of p at
// that router are removed). It reports how many origin records matched.
// Together with Originate/OriginateScoped this lets a simulation drive
// IGP-shaped churn — recompute, diff, replay — instead of hand-editing
// tables.
func (t *Topology) RemoveOrigin(router string, p ip.Prefix) (int, error) {
	i, ok := t.idx[router]
	if !ok {
		return 0, fmt.Errorf("routing: unknown router %q", router)
	}
	kept := t.origins[i][:0]
	removed := 0
	for _, o := range t.origins[i] {
		if o.prefix == p {
			removed++
			continue
		}
		kept = append(kept, o)
	}
	t.origins[i] = kept
	return removed, nil
}

// FibDiffOps advances a router's live forwarding table from its current
// state to next (e.g. a fresh ComputeTables result around a topology
// change) and returns the same transition as route operations for a
// fastpath.RCU to absorb incrementally. cur is updated in place —
// exactly what netsim.ApplyTables does by hand — so its interned hop IDs
// stay stable and the announce values match the IDs a live trie built
// from cur already stores. New next hops are interned on first use.
func FibDiffOps(cur, next *fib.Table) []fastpath.RouteOp {
	diff := cur.Diff(next)
	ops := make([]fastpath.RouteOp, 0, len(diff))
	for _, p := range diff {
		if hop, ok := next.NextHop(p); ok {
			cur.Add(p, hop) // interns the hop name if it is new
			ops = append(ops, fastpath.RouteOp{Kind: fastpath.OpAnnounce, Prefix: p, Value: cur.HopID(hop)})
		} else {
			cur.Remove(p)
			ops = append(ops, fastpath.RouteOp{Kind: fastpath.OpWithdraw, Prefix: p})
		}
	}
	return ops
}
