package routing

import (
	"testing"

	"repro/internal/fastpath"
	"repro/internal/ip"
)

// TestRemoveOriginFibDiffOps drives the IGP-churn loop the adapters
// exist for: mutate originations, recompute, and express the resulting
// per-router table transition as RouteOps for an RCU to absorb.
func TestRemoveOriginFibDiffOps(t *testing.T) {
	top := NewTopology()
	if err := top.AddLink("A", "B", 1); err != nil {
		t.Fatal(err)
	}
	if err := top.AddLink("B", "C", 1); err != nil {
		t.Fatal(err)
	}
	p1 := ip.MustParsePrefix("10.0.0.0/8")
	p2 := ip.MustParsePrefix("10.1.0.0/16")
	for _, p := range []ip.Prefix{p1, p2} {
		if err := top.Originate("C", p); err != nil {
			t.Fatal(err)
		}
	}
	cur := top.ComputeTables()["A"]

	// Withdraw one origination, grow the topology with a router A has
	// never seen (a brand-new next hop for its table), recompute.
	if _, err := top.RemoveOrigin("nope", p2); err == nil {
		t.Fatal("RemoveOrigin accepted an unknown router")
	}
	n, err := top.RemoveOrigin("C", p2)
	if err != nil || n != 1 {
		t.Fatalf("RemoveOrigin = (%d, %v), want (1, nil)", n, err)
	}
	if n, _ := top.RemoveOrigin("C", p2); n != 0 {
		t.Fatalf("second RemoveOrigin matched %d records, want 0", n)
	}
	if err := top.AddLink("A", "D", 1); err != nil {
		t.Fatal(err)
	}
	p3 := ip.MustParsePrefix("172.16.0.0/12")
	if err := top.Originate("D", p3); err != nil {
		t.Fatal(err)
	}
	next := top.ComputeTables()["A"]

	if cur.HopID("D") != -1 {
		t.Fatal("test premise broken: cur already knows hop D")
	}
	ops := FibDiffOps(cur, next)

	var sawWithdraw, sawAnnounce bool
	for _, op := range ops {
		switch op.Kind {
		case fastpath.OpWithdraw:
			if op.Prefix != p2 {
				t.Fatalf("unexpected withdraw of %v", op.Prefix)
			}
			sawWithdraw = true
		case fastpath.OpAnnounce:
			if op.Prefix != p3 {
				t.Fatalf("unexpected announce of %v", op.Prefix)
			}
			if op.Value < 0 {
				t.Fatalf("announce of %v carries uninterned hop ID %d", op.Prefix, op.Value)
			}
			sawAnnounce = true
		default:
			t.Fatalf("unexpected op kind %d", op.Kind)
		}
	}
	if !sawWithdraw || !sawAnnounce {
		t.Fatalf("diff ops missing a transition: %+v", ops)
	}

	// FibDiffOps advanced cur in place: it now matches next, the new hop
	// is interned, and the announce value is its ID.
	if d := cur.Diff(next); len(d) != 0 {
		t.Fatalf("cur still differs from next on %v", d)
	}
	id := cur.HopID("D")
	if id < 0 {
		t.Fatal("new next hop D was not interned into cur")
	}
	for _, op := range ops {
		if op.Kind == fastpath.OpAnnounce && op.Prefix == p3 && op.Value != id {
			t.Fatalf("announce value %d != interned hop ID %d", op.Value, id)
		}
	}
	if _, ok := cur.NextHop(p2); ok {
		t.Fatal("withdrawn prefix still present in cur")
	}
}
