// Package routing computes forwarding tables over a topology the way a
// 1999 IGP would: shortest paths (Dijkstra) with per-prefix origination.
// It exists so that the multi-router simulations (Figure 1, §5.3's
// heterogeneous networks, §5.1's MPLS comparison) run on tables that are
// similar between neighbors for the organic reason the paper gives —
// "the computation of a forwarding table at a router is based on the
// forwarding tables of its neighbors" — rather than by construction.
//
// Scoped origination models the aggregation structure of §3 and Figure 1:
// a destination's more-specific prefixes are visible only within a hop
// radius (inside the AS / near the edge), while the covering aggregate
// propagates everywhere. That is exactly what makes the best-matching
// prefix of a packet grow longer as it approaches the destination, which
// in turn is what lets the clue scheme shift work away from the backbone.
package routing

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/fib"
	"repro/internal/ip"
)

// LocalHop is the next-hop name used for self-originated prefixes.
const LocalHop = "local"

type edge struct {
	to   int
	cost int
}

type origin struct {
	prefix ip.Prefix
	radius int // hop-count visibility; <0 means global
}

// Topology is a network of routers and links with per-router prefix
// origination.
type Topology struct {
	names   []string
	idx     map[string]int
	adj     [][]edge
	origins [][]origin
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{idx: make(map[string]int)}
}

// AddRouter adds a router; adding an existing name is a no-op.
func (t *Topology) AddRouter(name string) {
	if _, ok := t.idx[name]; ok {
		return
	}
	t.idx[name] = len(t.names)
	t.names = append(t.names, name)
	t.adj = append(t.adj, nil)
	t.origins = append(t.origins, nil)
}

// Routers returns the router names in insertion order.
func (t *Topology) Routers() []string { return append([]string(nil), t.names...) }

// AddLink adds a bidirectional link with the given cost (≥1). Both routers
// are created if absent.
func (t *Topology) AddLink(a, b string, cost int) error {
	if a == b {
		return fmt.Errorf("routing: self link on %q", a)
	}
	if cost < 1 {
		return fmt.Errorf("routing: link cost %d < 1", cost)
	}
	t.AddRouter(a)
	t.AddRouter(b)
	ia, ib := t.idx[a], t.idx[b]
	t.adj[ia] = append(t.adj[ia], edge{to: ib, cost: cost})
	t.adj[ib] = append(t.adj[ib], edge{to: ia, cost: cost})
	return nil
}

// Originate announces prefix p from the given router to the whole network.
func (t *Topology) Originate(router string, p ip.Prefix) error {
	return t.OriginateScoped(router, p, -1)
}

// OriginateScoped announces prefix p from the given router with visibility
// limited to routers within `radius` hops (link count, not cost). A
// negative radius means global visibility. This models prefixes that are
// not re-advertised past an aggregation boundary.
func (t *Topology) OriginateScoped(router string, p ip.Prefix, radius int) error {
	i, ok := t.idx[router]
	if !ok {
		return fmt.Errorf("routing: unknown router %q", router)
	}
	t.origins[i] = append(t.origins[i], origin{prefix: p, radius: radius})
	return nil
}

// priority queue for Dijkstra.
type pqItem struct {
	node, dist int
}
type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

// shortestFrom runs Dijkstra from src, returning cost-distance and the
// first hop (as a node index, -1 for src itself) toward every node.
// Ties are broken toward the lower node index, deterministically.
func (t *Topology) shortestFrom(src int) (dist []int, firstHop []int) {
	n := len(t.names)
	const inf = 1 << 30
	dist = make([]int, n)
	firstHop = make([]int, n)
	for i := range dist {
		dist[i] = inf
		firstHop[i] = -1
	}
	dist[src] = 0
	q := &pq{{node: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.dist > dist[it.node] {
			continue
		}
		for _, e := range t.adj[it.node] {
			nd := it.dist + e.cost
			if nd < dist[e.to] {
				dist[e.to] = nd
				if it.node == src {
					firstHop[e.to] = e.to
				} else {
					firstHop[e.to] = firstHop[it.node]
				}
				heap.Push(q, pqItem{node: e.to, dist: nd})
			}
		}
	}
	return dist, firstHop
}

// hopDistances returns link-count distances from src (BFS), for radius
// scoping.
func (t *Topology) hopDistances(src int) []int {
	n := len(t.names)
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range t.adj[u] {
			if dist[e.to] < 0 {
				dist[e.to] = dist[u] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return dist
}

// ComputeTables runs the routing computation and returns one forwarding
// table per router. A router reaches an originated prefix via its first
// hop on the shortest path to the originator; prefixes originated locally
// get the LocalHop next hop; scoped prefixes simply do not exist in the
// tables of routers beyond their radius.
func (t *Topology) ComputeTables() map[string]*fib.Table {
	out := make(map[string]*fib.Table, len(t.names))
	// Precompute per-originator hop distances for scoping.
	hopDist := make([][]int, len(t.names))
	for i, origs := range t.origins {
		needs := false
		for _, o := range origs {
			if o.radius >= 0 {
				needs = true
				break
			}
		}
		if needs {
			hopDist[i] = t.hopDistances(i)
		}
	}
	for u := range t.names {
		tab := fib.New(t.names[u], familyOf(t))
		_, firstHop := t.shortestFrom(u)
		for v, origs := range t.origins {
			for _, o := range origs {
				if v == u {
					tab.Add(o.prefix, LocalHop)
					continue
				}
				if o.radius >= 0 && (hopDist[v][u] < 0 || hopDist[v][u] > o.radius) {
					continue
				}
				if firstHop[v] < 0 {
					continue // unreachable
				}
				tab.Add(o.prefix, t.names[firstHop[v]])
			}
		}
		out[t.names[u]] = tab
	}
	return out
}

// familyOf inspects the first originated prefix to pick the table family
// (defaults to IPv4 for an empty topology).
func familyOf(t *Topology) ip.Family {
	for _, origs := range t.origins {
		for _, o := range origs {
			return o.prefix.Family()
		}
	}
	return ip.IPv4
}

// Chain builds a linear chain topology r0 - r1 - ... - r(n-1) with unit
// costs and the given name prefix, returning the router names in order.
// Chains are the topology of Figure 1 (a packet path from source to
// destination).
func Chain(t *Topology, namePrefix string, n int) []string {
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("%s%d", namePrefix, i)
		t.AddRouter(names[i])
		if i > 0 {
			_ = t.AddLink(names[i-1], names[i], 1)
		}
	}
	return names
}

// PreferentialGraph grows a Barabási–Albert-style random topology: n
// routers, each new one linking (unit cost) to m existing routers chosen
// with probability proportional to their degree. The result has the
// hub-and-spoke shape of real inter-domain graphs — a few high-degree
// "backbone" routers carrying most paths — which is what the Figure 1
// claim about backbone relief is evaluated on at network scale. Names are
// namePrefix + index; the function returns them in creation order.
func PreferentialGraph(t *Topology, namePrefix string, seed int64, n, m int) ([]string, error) {
	if n < 2 || m < 1 || m >= n {
		return nil, fmt.Errorf("routing: need n >= 2 and 1 <= m < n")
	}
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("%s%d", namePrefix, i)
		t.AddRouter(names[i])
	}
	// endpoints holds one entry per link endpoint, so uniform sampling
	// from it is degree-proportional sampling.
	var endpoints []int
	if err := t.AddLink(names[0], names[1], 1); err != nil {
		return nil, err
	}
	endpoints = append(endpoints, 0, 1)
	for i := 2; i < n; i++ {
		chosen := map[int]bool{}
		for len(chosen) < min(m, i) {
			target := endpoints[rng.Intn(len(endpoints))]
			if target == i || chosen[target] {
				continue
			}
			chosen[target] = true
		}
		targets := make([]int, 0, len(chosen))
		for target := range chosen {
			targets = append(targets, target)
		}
		sort.Ints(targets) // map order is random; keep generation deterministic
		for _, target := range targets {
			if err := t.AddLink(names[i], names[target], 1); err != nil {
				return nil, err
			}
			endpoints = append(endpoints, i, target)
		}
	}
	return names, nil
}

// Degree returns the number of links at a router (0 for unknown names).
func (t *Topology) Degree(router string) int {
	i, ok := t.idx[router]
	if !ok {
		return 0
	}
	return len(t.adj[i])
}

// NestedOrigination announces, from the given router, the nested prefix
// series of Figure 1: the shortest (aggregate) prefix globally and each
// successively longer prefix with a successively smaller radius — e.g.
// lengths [8,12,16,20,24] with radii [-1,8,6,4,2]. All prefixes share the
// same leading bits (they are truncations of `host`). Lengths and radii
// must have equal length and lengths must be increasing.
func NestedOrigination(t *Topology, router string, host ip.Addr, lengths, radii []int) error {
	if len(lengths) != len(radii) {
		return fmt.Errorf("routing: lengths and radii differ in length")
	}
	sorted := sort.IntsAreSorted(lengths)
	if !sorted {
		return fmt.Errorf("routing: lengths must be increasing")
	}
	for i, l := range lengths {
		if err := t.OriginateScoped(router, ip.PrefixFrom(host, l), radii[i]); err != nil {
			return err
		}
	}
	return nil
}
