package routing

import (
	"testing"

	"repro/internal/fib"
	"repro/internal/ip"
)

func triangle(t *testing.T) *Topology {
	t.Helper()
	top := NewTopology()
	if err := top.AddLink("A", "B", 1); err != nil {
		t.Fatal(err)
	}
	if err := top.AddLink("B", "C", 1); err != nil {
		t.Fatal(err)
	}
	if err := top.AddLink("A", "C", 5); err != nil {
		t.Fatal(err)
	}
	return top
}

func TestAddLinkValidation(t *testing.T) {
	top := NewTopology()
	if err := top.AddLink("A", "A", 1); err == nil {
		t.Error("self link should fail")
	}
	if err := top.AddLink("A", "B", 0); err == nil {
		t.Error("zero cost should fail")
	}
	if err := top.Originate("nope", ip.MustParsePrefix("10.0.0.0/8")); err == nil {
		t.Error("originating from unknown router should fail")
	}
}

func TestShortestPathNextHops(t *testing.T) {
	top := triangle(t)
	p := ip.MustParsePrefix("10.0.0.0/8")
	if err := top.Originate("C", p); err != nil {
		t.Fatal(err)
	}
	tables := top.ComputeTables()
	// A reaches C via B (cost 2) rather than the direct cost-5 link.
	hop, ok := tables["A"].NextHop(p)
	if !ok || hop != "B" {
		t.Errorf("A's next hop = %q/%v, want B", hop, ok)
	}
	if hop, _ := tables["B"].NextHop(p); hop != "C" {
		t.Errorf("B's next hop = %q, want C", hop)
	}
	if hop, _ := tables["C"].NextHop(p); hop != LocalHop {
		t.Errorf("C's next hop = %q, want %q", hop, LocalHop)
	}
}

func TestNeighborTablesSimilar(t *testing.T) {
	// The organic-similarity premise: two adjacent routers computed from
	// the same topology share almost all prefixes.
	top := NewTopology()
	names := Chain(top, "r", 6)
	for i, name := range names {
		base := ip.AddrFrom32(uint32(10+i) << 24)
		if err := top.Originate(name, ip.PrefixFrom(base, 8)); err != nil {
			t.Fatal(err)
		}
		if err := top.Originate(name, ip.PrefixFrom(base, 16)); err != nil {
			t.Fatal(err)
		}
	}
	tables := top.ComputeTables()
	inter := fib.Intersection(tables["r2"], tables["r3"])
	if inter != tables["r2"].Len() {
		t.Errorf("adjacent global tables differ: intersection %d of %d", inter, tables["r2"].Len())
	}
}

func TestScopedOrigination(t *testing.T) {
	top := NewTopology()
	names := Chain(top, "r", 8)
	host := ip.MustParseAddr("10.1.2.3")
	// /8 global, /16 within 3 hops, /24 within 1 hop of r7.
	if err := NestedOrigination(top, names[7], host, []int{8, 16, 24}, []int{-1, 3, 1}); err != nil {
		t.Fatal(err)
	}
	tables := top.ComputeTables()
	for i, name := range names {
		tab := tables[name]
		hops := 7 - i
		has16 := tab.Contains(ip.PrefixFrom(host, 16))
		has24 := tab.Contains(ip.PrefixFrom(host, 24))
		if !tab.Contains(ip.PrefixFrom(host, 8)) {
			t.Errorf("%s missing the global /8", name)
		}
		if has16 != (hops <= 3) || has24 != (hops <= 1) {
			t.Errorf("%s (dist %d): /16=%v /24=%v", name, hops, has16, has24)
		}
	}
	// BMP length grows monotonically along the chain toward r7 (Figure 1).
	prev := -1
	for _, name := range names[:7] {
		p, _, ok := tables[name].Trie().Lookup(host, nil)
		if !ok {
			t.Fatalf("%s: no BMP for %v", name, host)
		}
		if p.Len() < prev {
			t.Errorf("%s: BMP length %d decreased below %d", name, p.Len(), prev)
		}
		prev = p.Len()
	}
	if prev <= 8 {
		t.Error("BMP length never grew along the path")
	}
}

func TestNestedOriginationValidation(t *testing.T) {
	top := NewTopology()
	top.AddRouter("X")
	host := ip.MustParseAddr("10.0.0.0")
	if err := NestedOrigination(top, "X", host, []int{8, 16}, []int{-1}); err == nil {
		t.Error("mismatched lengths/radii should fail")
	}
	if err := NestedOrigination(top, "X", host, []int{16, 8}, []int{-1, -1}); err == nil {
		t.Error("decreasing lengths should fail")
	}
	if err := NestedOrigination(top, "nope", host, []int{8}, []int{-1}); err == nil {
		t.Error("unknown router should fail")
	}
}

func TestUnreachableAndDisconnected(t *testing.T) {
	top := NewTopology()
	top.AddRouter("island")
	top.AddRouter("main")
	p := ip.MustParsePrefix("10.0.0.0/8")
	if err := top.Originate("island", p); err != nil {
		t.Fatal(err)
	}
	tables := top.ComputeTables()
	if tables["main"].Contains(p) {
		t.Error("unreachable prefix must not appear in main's table")
	}
	if hop, _ := tables["island"].NextHop(p); hop != LocalHop {
		t.Error("originator should keep its local route")
	}
}

func TestChainAndRouters(t *testing.T) {
	top := NewTopology()
	names := Chain(top, "n", 4)
	if len(names) != 4 || names[0] != "n0" || names[3] != "n3" {
		t.Errorf("Chain names = %v", names)
	}
	if got := top.Routers(); len(got) != 4 {
		t.Errorf("Routers = %v", got)
	}
	// Idempotent AddRouter.
	top.AddRouter("n0")
	if len(top.Routers()) != 4 {
		t.Error("AddRouter not idempotent")
	}
}

func TestPreferentialGraph(t *testing.T) {
	top := NewTopology()
	names, err := PreferentialGraph(top, "as", 7, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 40 || len(top.Routers()) != 40 {
		t.Fatalf("router count = %d", len(names))
	}
	// Connectivity: a prefix originated anywhere reaches everyone.
	p := ip.MustParsePrefix("10.0.0.0/8")
	if err := top.Originate(names[39], p); err != nil {
		t.Fatal(err)
	}
	tables := top.ComputeTables()
	for _, name := range names {
		if !tables[name].Contains(p) {
			t.Fatalf("%s did not learn the route (graph disconnected?)", name)
		}
	}
	// Skew: the max degree should be several times the minimum (hubs).
	maxDeg, minDeg := 0, 1<<30
	for _, name := range names {
		d := top.Degree(name)
		if d == 0 {
			t.Fatalf("%s has no links", name)
		}
		if d > maxDeg {
			maxDeg = d
		}
		if d < minDeg {
			minDeg = d
		}
	}
	if maxDeg < 3*minDeg {
		t.Errorf("degree distribution not skewed: max %d min %d", maxDeg, minDeg)
	}
	if top.Degree("nope") != 0 {
		t.Error("unknown router should have degree 0")
	}
	// Determinism.
	top2 := NewTopology()
	if _, err := PreferentialGraph(top2, "as", 7, 40, 2); err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if top.Degree(name) != top2.Degree(name) {
			t.Fatal("graph generation not deterministic")
		}
	}
	// Validation.
	if _, err := PreferentialGraph(NewTopology(), "x", 1, 1, 1); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := PreferentialGraph(NewTopology(), "x", 1, 5, 5); err == nil {
		t.Error("m>=n should fail")
	}
}

func TestEmptyTopologyTables(t *testing.T) {
	top := NewTopology()
	top.AddRouter("lonely")
	tables := top.ComputeTables()
	if tables["lonely"].Len() != 0 {
		t.Error("empty origination should give empty table")
	}
}
