package synth

import (
	"math/rand"

	"repro/internal/ip"
)

// DestSampler draws destination addresses from a universe with a
// zipf-skewed popularity over prefixes — the traffic-side complement of
// the table generator: a few destinations carry most of the load, the
// long tail exercises the rest of the table. Each draw picks a prefix
// by zipf rank over generation order and randomizes the host bits
// inside it, so destinations are always routable in any router sampled
// from the same universe (at zero divergence). Deterministic by seed.
type DestSampler struct {
	u    *ModernUniverse
	rng  *rand.Rand
	zipf *rand.Zipf
}

// DestSampler returns a sampler over u's prefixes. s is the zipf
// exponent (values ≤ 1 clamp to a near-uniform 1.0001; the traffic
// literature's usual choice is 1.1–1.3).
func (u *ModernUniverse) DestSampler(seed int64, s float64) *DestSampler {
	if s <= 1 {
		s = 1.0001
	}
	rng := rand.New(rand.NewSource(seed))
	return &DestSampler{
		u:    u,
		rng:  rng,
		zipf: rand.NewZipf(rng, s, 1, uint64(len(u.prefixes)-1)),
	}
}

// Next draws one destination address.
func (d *DestSampler) Next() ip.Addr {
	p := d.u.prefixes[d.zipf.Uint64()]
	l := p.Len()
	if p.Family() == ip.IPv4 {
		base := p.Addr().Uint32()
		if l >= 32 {
			return p.Addr()
		}
		mask := ^uint32(0) >> uint(l)
		return ip.AddrFrom32(base | d.rng.Uint32()&mask)
	}
	hi, lo := p.Addr().Halves()
	// Modern-universe prefixes are ≤ /64, so host bits span the tail of
	// the high word plus the whole low word.
	if l < 64 {
		mask := ^uint64(0) >> uint(l)
		hi |= d.rng.Uint64() & mask
	}
	lo = d.rng.Uint64()
	return ip.AddrFrom128(hi, lo)
}

// Dests draws n destinations in one call (tests and small workloads;
// the generator streams from Next to avoid materializing millions).
func (u *ModernUniverse) Dests(seed int64, n int, s float64) []ip.Addr {
	d := u.DestSampler(seed, s)
	out := make([]ip.Addr, n)
	for i := range out {
		out[i] = d.Next()
	}
	return out
}
