package synth

import (
	"testing"

	"repro/internal/ip"
)

func TestDestSamplerDeterministic(t *testing.T) {
	u := NewModernUniverse(7, ip.IPv4, 2000)
	a := u.Dests(11, 500, 1.2)
	b := u.Dests(11, 500, 1.2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical seeds: %v vs %v", i, a[i], b[i])
		}
	}
	c := u.Dests(12, 500, 1.2)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced an identical destination stream")
	}
}

// TestDestSamplerRoutable pins the property the cluster harness relies
// on for its zero-no-route gate: every sampled destination falls inside
// some universe prefix, for both families.
func TestDestSamplerRoutable(t *testing.T) {
	for _, fam := range []ip.Family{ip.IPv4, ip.IPv6} {
		u := NewModernUniverse(3, fam, 1500)
		prefs := u.Prefixes()
		for i, dest := range u.Dests(5, 300, 1.2) {
			ok := false
			for _, p := range prefs {
				if p.Contains(dest) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("%v dest %d (%v) outside every universe prefix", fam, i, dest)
			}
		}
	}
}

// TestDestSamplerSkew checks the zipf shape: a strongly skewed sampler
// concentrates draws on few distinct prefixes, a near-uniform one
// spreads them out.
func TestDestSamplerSkew(t *testing.T) {
	u := NewModernUniverse(7, ip.IPv4, 5000)
	distinct := func(s float64) int {
		d := u.DestSampler(9, s)
		seen := make(map[ip.Addr]struct{})
		for i := 0; i < 3000; i++ {
			seen[d.Next()] = struct{}{}
		}
		return len(seen)
	}
	skewed, flat := distinct(2.5), distinct(1.0)
	if skewed >= flat {
		t.Fatalf("zipf skew has no effect: distinct(s=2.5)=%d >= distinct(s=1.0)=%d", skewed, flat)
	}
}
