package synth

import (
	"testing"

	"repro/internal/ip"
)

// These tests pin generator output byte-for-byte at fixed seeds, for
// the paper-shaped generator and the modern-shaped one alike. Every
// benchmark table in EXPERIMENTS.md cites a seed; these goldens are
// what make those citations reproducible. If a generator change trips
// one, it invalidates all published numbers — bump the seeds in the
// docs and re-run the sweeps rather than just updating the strings.

func pinPrefixes(t *testing.T, label string, got []ip.Prefix, want []string) {
	t.Helper()
	if len(got) < len(want) {
		t.Fatalf("%s: only %d prefixes, want at least %d", label, len(got), len(want))
	}
	for i, w := range want {
		if s := got[i].String(); s != w {
			t.Fatalf("%s: prefix %d = %s, want %s", label, i, s, w)
		}
	}
}

func TestGoldenModernV4(t *testing.T) {
	u := NewModernUniverse(2026, ip.IPv4, 50000)
	pinPrefixes(t, "modern-v4 seed 2026", u.Prefixes(), []string{
		"120.29.45.0/24",
		"114.167.108.0/23",
		"114.167.110.0/23",
		"114.167.112.0/23",
		"21.28.241.0/24",
		"17.165.200.0/22",
		"17.165.204.0/22",
		"125.128.158.0/24",
		"125.128.159.0/24",
		"125.128.160.0/24",
		"125.128.161.0/24",
		"125.128.162.0/24",
	})
}

func TestGoldenModernV6(t *testing.T) {
	u := NewModernUniverse(2026, ip.IPv6, 20000)
	pinPrefixes(t, "modern-v6 seed 2026", u.Prefixes(), []string{
		"32a2:a713:b91e::/48",
		"3f17:18cb:ce70::/44",
		"3f17:18cb:ce80::/44",
		"3f17:18cb:ce90::/44",
		"3caa:392e:e975::/48",
		"2253:d540:3200::/40",
		"2253:d540:3300::/40",
		"29f7:f083:945f::/48",
		"29f7:f083:9460::/48",
		"29f7:f083:9461::/48",
		"29f7:f083:9462::/48",
		"29f7:f083:9463::/48",
	})
}

func TestGoldenPaperV4(t *testing.T) {
	routers := PaperRouters(1999, 0.1)
	att, ok := routers["AT&T-1"]
	if !ok {
		t.Fatal("PaperRouters(1999, 0.1) lost router AT&T-1")
	}
	if att.Len() != 2341 {
		t.Fatalf("AT&T-1 holds %d prefixes, want 2341", att.Len())
	}
	pinPrefixes(t, "paper AT&T-1 seed 1999", att.Prefixes(), []string{
		"24.17.212.0/24",
		"24.116.89.0/24",
		"24.138.252.0/24",
		"24.175.108.0/22",
		"24.175.108.112/29",
		"24.175.109.128/27",
		"24.193.194.0/24",
		"24.244.0.0/19",
		"25.16.135.0/24",
		"25.140.102.0/24",
		"25.160.0.0/14",
		"25.163.216.0/23",
	})
}

func TestGoldenPaperV6(t *testing.T) {
	u := NewUniverseV6(41, 4000)
	sender := u.Router(RouterSpec{Name: "v6-sender", Size: 2500, Divergence: 0.03})
	pinPrefixes(t, "paper v6-sender seed 41", sender.Prefixes(), []string{
		"2001:18:1000::/36",
		"2001:18:1391:8000::/50",
		"2001:2c:915c::/48",
		"2001:2c:915c:55a0::/61",
		"2001:31:1000::/36",
		"2001:77:a000::/36",
		"2001:96:7b60::/44",
		"2001:9c:fb3a::/48",
	})
}
