package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/fib"
	"repro/internal/ip"
)

// This file generates modern-shaped tables: a 2026 full BGP view rather
// than the 1999 snapshot buildUniverse models. The shape differs from
// the paper era in three load-bearing ways:
//
//   - Scale: ~1M IPv4 / ~200k IPv6 prefixes instead of tens of
//     thousands, which is what pushes the compiled fastpath out of
//     last-level cache and motivates the compressed snapshot layout.
//   - Length histogram: sharply peaked at /24 (IPv4, ~60% of routes)
//     and /48 (IPv6, ~48%), with secondary mass at the allocation
//     lengths (/16, /19–/22; /32, /29) — the distribution every
//     routing-table report has shown for two decades.
//   - Clustering: address space is handed out in blocks, so
//     deaggregated routes arrive as runs of consecutive same-length
//     siblings (a /20 split into 16 /24s), not as uniform random bits.
//     That clustering is exactly the redundancy the entropy-compressed
//     trie exploits, so the generator must reproduce it for the
//     bytes/prefix numbers to mean anything.
//
// Everything is deterministic by seed, like the paper-shaped generator:
// the golden-seed tests pin the first prefixes of both.

// modernLengths4 is the IPv4 prefix-length mix, in parts per 1000,
// shaped after contemporary full-view reports (peak at /24, secondary
// mass at the RIR allocation lengths).
var modernLengths4 = [][2]int{
	{10, 1}, {12, 2}, {13, 3}, {14, 4}, {15, 5}, {16, 35}, {17, 15},
	{18, 20}, {19, 30}, {20, 45}, {21, 45}, {22, 100}, {23, 80},
	{24, 600}, {25, 5}, {26, 4}, {27, 3}, {28, 2}, {29, 1},
}

// modernLengths6 is the IPv6 mix: peaked at /48 (site assignments) with
// mass at /32 (LIR allocations) and the sparse lengths between; capped
// at /64 so modern tables never out-range the paper's own generator.
var modernLengths6 = [][2]int{
	{19, 1}, {20, 2}, {24, 3}, {28, 6}, {29, 40}, {30, 12}, {32, 130},
	{33, 12}, {34, 12}, {35, 10}, {36, 50}, {38, 12}, {40, 70},
	{42, 12}, {44, 70}, {46, 30}, {47, 20}, {48, 480}, {52, 8},
	{56, 12}, {64, 8},
}

// defaultModernHops is the next-hop alphabet size: a border router
// peers with a few dozen neighbors, and route mass concentrates on the
// big transits — hence the zipf draw, not a uniform one.
const defaultModernHops = 48

// ModernUniverse is a deterministic modern-shaped route universe.
// Router views are sampled from it the way Universe's are: skip
// sampling by divergence, so two routers drawn from one universe agree
// on most of the table.
type ModernUniverse struct {
	seed     int64
	fam      ip.Family
	prefixes []ip.Prefix
	hops     []uint16 // per-prefix next-hop index, zipf-skewed
	hopNames []string
}

// NewModernUniverse generates a universe of exactly size distinct
// prefixes for the family, deterministic in seed. Generation cost is
// O(size); a 1M-prefix universe builds in a few hundred milliseconds.
func NewModernUniverse(seed int64, fam ip.Family, size int) *ModernUniverse {
	u := &ModernUniverse{
		seed:     seed,
		fam:      fam,
		prefixes: make([]ip.Prefix, 0, size),
		hops:     make([]uint16, 0, size),
		hopNames: make([]string, defaultModernHops),
	}
	for i := range u.hopNames {
		u.hopNames[i] = fmt.Sprintf("hop-%02d", i)
	}
	rng := rand.New(rand.NewSource(seed))
	// s=1.2 concentrates ~half the route mass on the top few hops.
	zipf := rand.NewZipf(rng, 1.2, 2, defaultModernHops-1)
	lengths := modernLengths4
	if fam == ip.IPv6 {
		lengths = modernLengths6
	}
	totalW := 0
	for _, lw := range lengths {
		totalW += lw[1]
	}
	seen := make(map[ip.Prefix]struct{}, size+size/4)
	emit := func(p ip.Prefix) {
		if _, dup := seen[p]; dup {
			return
		}
		seen[p] = struct{}{}
		u.prefixes = append(u.prefixes, p)
		u.hops = append(u.hops, uint16(zipf.Uint64()))
	}
	for len(u.prefixes) < size {
		// Draw a length from the histogram.
		w := rng.Intn(totalW)
		l := lengths[len(lengths)-1][0]
		for _, lw := range lengths {
			if w < lw[1] {
				l = lw[0]
				break
			}
			w -= lw[1]
		}
		p := ip.PrefixFrom(modernBase(rng, fam), l)
		// ~70% of draws start a run of consecutive same-length siblings
		// (a deaggregated allocation); run lengths are geometric with
		// mean ~5.6, capped so one draw can't blow the histogram.
		run := 1
		if rng.Float64() < 0.7 {
			for rng.Float64() < 0.82 && run < 64 {
				run++
			}
		}
		for i := 0; i < run && len(u.prefixes) < size; i++ {
			emit(p)
			np, ok := nextSibling(p)
			if !ok {
				break
			}
			p = np
		}
	}
	return u
}

// modernBase draws a base address with a realistic high-bit shape:
// IPv4 anywhere in unicast space (first octet 1–223, skipping loopback),
// IPv6 in global-unicast 2000::/3.
func modernBase(rng *rand.Rand, fam ip.Family) ip.Addr {
	if fam == ip.IPv4 {
		first := 1 + rng.Intn(223)
		if first == 127 {
			first = 128
		}
		return ip.AddrFrom32(uint32(first)<<24 | rng.Uint32()&0x00FFFFFF)
	}
	hi := uint64(0x2000)<<48 | rng.Uint64()&0x1FFFFFFFFFFFFFFF
	return ip.AddrFrom128(hi, rng.Uint64())
}

// nextSibling returns the prefix one step to the right at the same
// length — the next block of a deaggregated allocation — and false on
// address-space wraparound. Only lengths ≤ 64 occur in the modern
// histograms, so the arithmetic stays in the high word.
func nextSibling(p ip.Prefix) (ip.Prefix, bool) {
	l := p.Len()
	if l == 0 || l > 64 {
		return p, false
	}
	hi, _ := p.Addr().Halves()
	step := uint64(1) << (64 - uint(l))
	nhi := hi + step
	if nhi < hi {
		return p, false // wraps for IPv4 too: its /≤32 step overflows hi exactly on 32-bit wrap
	}
	a := ip.AddrFrom128(nhi, 0)
	if p.Family() == ip.IPv4 {
		a = ip.AddrFrom32(uint32(nhi >> 32))
	}
	return ip.PrefixFrom(a, l), true
}

// Len returns the universe's prefix count.
func (u *ModernUniverse) Len() int { return len(u.prefixes) }

// Family returns the universe's address family.
func (u *ModernUniverse) Family() ip.Family { return u.fam }

// Prefixes returns the generated prefixes in generation order. The
// caller must not mutate the slice.
func (u *ModernUniverse) Prefixes() []ip.Prefix { return u.prefixes }

// Router samples a router's view: the first prefixes of the universe
// with a divergence fraction independently skipped (per router name, so
// two routers differ in which routes they are missing), each mapped to
// its universe next hop. Size is capped by what the universe holds.
func (u *ModernUniverse) Router(name string, size int, divergence float64) *fib.Table {
	rng := rand.New(rand.NewSource(u.seed ^ int64(hashName(name))<<20))
	t := fib.New(name, u.fam)
	for i, p := range u.prefixes {
		if t.Len() >= size {
			break
		}
		if divergence > 0 && rng.Float64() < divergence {
			continue
		}
		t.Add(p, u.hopNames[u.hops[i]])
	}
	return t
}

// ModernTable is the one-call convenience for benchmarks: a single
// router holding exactly size modern-shaped prefixes.
func ModernTable(seed int64, fam ip.Family, size int) *fib.Table {
	return NewModernUniverse(seed, fam, size).Router("modern", size, 0)
}
