package synth

import (
	"testing"

	"repro/internal/ip"
)

// TestModernHistogram pins the generated length distribution to the
// modern shape: the /24 (IPv4) and /48 (IPv6) peaks carry the expected
// share of the table, and every emitted length comes from the
// histogram.
func TestModernHistogram(t *testing.T) {
	for _, tc := range []struct {
		fam       ip.Family
		size      int
		peak      int
		lo, hi    float64
		histogram [][2]int
	}{
		{ip.IPv4, 100000, 24, 0.53, 0.67, modernLengths4},
		{ip.IPv6, 50000, 48, 0.41, 0.55, modernLengths6},
	} {
		u := NewModernUniverse(7, tc.fam, tc.size)
		if u.Len() != tc.size {
			t.Fatalf("%v: generated %d prefixes, want %d", tc.fam, u.Len(), tc.size)
		}
		allowed := map[int]bool{}
		for _, lw := range tc.histogram {
			allowed[lw[0]] = true
		}
		counts := map[int]int{}
		for _, p := range u.Prefixes() {
			if p.Family() != tc.fam {
				t.Fatalf("%v: prefix %v has wrong family", tc.fam, p)
			}
			if !allowed[p.Len()] {
				t.Fatalf("%v: prefix %v has off-histogram length", tc.fam, p)
			}
			counts[p.Len()]++
		}
		share := float64(counts[tc.peak]) / float64(tc.size)
		if share < tc.lo || share > tc.hi {
			t.Fatalf("%v: /%d carries %.2f of the table, want [%.2f, %.2f]",
				tc.fam, tc.peak, share, tc.lo, tc.hi)
		}
	}
}

// TestModernClustering verifies the deaggregation runs the compressed
// trie depends on: a large fraction of consecutive same-length sibling
// pairs must be exactly adjacent in address space.
func TestModernClustering(t *testing.T) {
	u := NewModernUniverse(3, ip.IPv4, 50000)
	ps := u.Prefixes()
	adjacent := 0
	for i := 1; i < len(ps); i++ {
		if ps[i].Len() != ps[i-1].Len() {
			continue
		}
		if ns, ok := nextSibling(ps[i-1]); ok && ns == ps[i] {
			adjacent++
		}
	}
	if frac := float64(adjacent) / float64(len(ps)); frac < 0.5 {
		t.Fatalf("only %.2f of prefixes continue a sibling run, want >= 0.5", frac)
	}
}

// TestModernNextHopSkew pins the zipf draw: the most popular next hop
// must carry far more than a uniform share of routes, and more than one
// hop must appear.
func TestModernNextHopSkew(t *testing.T) {
	tab := ModernTable(11, ip.IPv4, 30000)
	byHop := map[string]int{}
	for _, p := range tab.Prefixes() {
		hop, ok := tab.NextHop(p)
		if !ok {
			t.Fatalf("prefix %v lost its next hop", p)
		}
		byHop[hop]++
	}
	if len(byHop) < 8 {
		t.Fatalf("only %d distinct next hops in a 30k table", len(byHop))
	}
	top := 0
	for _, n := range byHop {
		if n > top {
			top = n
		}
	}
	uniform := float64(tab.Len()) / float64(defaultModernHops)
	if float64(top) < 3*uniform {
		t.Fatalf("top hop carries %d routes, want >= 3x the uniform share %.0f", top, uniform)
	}
}

// TestModernRouterDivergence checks the sampled-view contract: two
// routers drawn with divergence share most of the table but each misses
// routes the other holds, and divergence 0 reproduces the universe head.
func TestModernRouterDivergence(t *testing.T) {
	u := NewModernUniverse(21, ip.IPv4, 40000)
	a := u.Router("border-a", 30000, 0.05)
	b := u.Router("border-b", 30000, 0.05)
	if a.Len() != 30000 || b.Len() != 30000 {
		t.Fatalf("router sizes %d/%d, want 30000", a.Len(), b.Len())
	}
	onlyA, shared := 0, 0
	for _, p := range a.Prefixes() {
		if b.Contains(p) {
			shared++
		} else {
			onlyA++
		}
	}
	if onlyA == 0 {
		t.Fatal("divergent routers are identical")
	}
	if float64(shared) < 0.85*float64(a.Len()) {
		t.Fatalf("routers share only %d of %d routes", shared, a.Len())
	}
	exact := u.Router("anything", 1000, 0)
	for i, p := range u.Prefixes()[:1000] {
		if !exact.Contains(p) {
			t.Fatalf("divergence-0 router missing universe prefix %d (%v)", i, p)
		}
	}
}

// TestModernDeterminism requires bit-identical output for equal seeds
// and different output for different seeds — table cells across
// benchmark runs must be comparable.
func TestModernDeterminism(t *testing.T) {
	a := NewModernUniverse(5, ip.IPv4, 20000)
	b := NewModernUniverse(5, ip.IPv4, 20000)
	for i := range a.prefixes {
		if a.prefixes[i] != b.prefixes[i] || a.hops[i] != b.hops[i] {
			t.Fatalf("same seed diverged at prefix %d", i)
		}
	}
	c := NewModernUniverse(6, ip.IPv4, 20000)
	same := 0
	for i := range a.prefixes {
		if a.prefixes[i] == c.prefixes[i] {
			same++
		}
	}
	if same > len(a.prefixes)/10 {
		t.Fatalf("different seeds agree on %d of %d prefixes", same, len(a.prefixes))
	}
}

// TestNextSibling pins the sibling-step arithmetic at the edges: both
// families, the wrap guard, and length bounds.
func TestNextSibling(t *testing.T) {
	p := ip.MustParsePrefix("10.0.4.0/22")
	n, ok := nextSibling(p)
	if !ok || n != ip.MustParsePrefix("10.0.8.0/22") {
		t.Fatalf("nextSibling(%v) = %v, %v", p, n, ok)
	}
	if _, ok := nextSibling(ip.MustParsePrefix("255.255.255.0/24")); ok {
		t.Fatal("IPv4 wraparound not caught")
	}
	p6 := ip.MustParsePrefix("2001:db8::/48")
	n6, ok := nextSibling(p6)
	if !ok || n6 != ip.MustParsePrefix("2001:db8:1::/48") {
		t.Fatalf("nextSibling(%v) = %v, %v", p6, n6, ok)
	}
	if _, ok := nextSibling(ip.PrefixFrom(ip.AddrFrom32(0), 0)); ok {
		t.Fatal("/0 must have no sibling")
	}
}

// TestModernWorkloadCompatible checks that the standard workload
// generator draws in-table destinations from a modern router — the
// pairing every scale benchmark relies on.
func TestModernWorkloadCompatible(t *testing.T) {
	tab := ModernTable(9, ip.IPv4, 20000)
	w := NewWorkload(1, tab)
	trie := tab.Trie()
	hits := 0
	for i := 0; i < 500; i++ {
		if _, _, ok := trie.Lookup(w.Next(), nil); ok {
			hits++
		}
	}
	if hits < 450 {
		t.Fatalf("only %d/500 workload destinations hit the modern table", hits)
	}
}
