// Package synth generates synthetic router forwarding tables that stand in
// for the 1999 snapshots the paper's evaluation used (MAE-East, MAE-West,
// Paix route servers and two pairs of neighboring ISP backbone routers).
// Those snapshots were obtained privately from Merit and AT&T and are long
// gone; what the clue experiments actually depend on is reproduced here by
// construction:
//
//   - per-router table sizes (Table 1),
//   - high pairwise overlap between neighboring tables (Table 3) — the
//     premise of the whole scheme (§3: "forwarding tables at neighboring
//     routers are very similar"),
//   - a 1999-shaped prefix-length distribution (mass at /16–/24, a long
//     tail of aggregates, ~a third of prefixes nested under another
//     table prefix), which controls how often a clue has descendants,
//   - a small, asymmetric "problematic clue" rate (Table 2): a clue is
//     problematic at a receiver that carries more-specifics the sender
//     lacks, with no sender prefix in between.
//
// All generation is deterministic in the seed.
package synth

import (
	"math/rand"

	"repro/internal/fib"
	"repro/internal/ip"
	"repro/internal/trie"
)

// Universe is a global pool of prefixes (think: the 1999 BGP table) from
// which router tables are sampled. Routers sampled from the same universe
// are automatically similar, the way real neighbors are, because their
// tables are computed from each other's announcements.
type Universe struct {
	seed     int64
	fam      ip.Family
	prefixes []ip.Prefix // shuffled sampling order
	index    map[ip.Prefix]bool
	aggs     []ip.Prefix // the aggregates, for deriving private specifics
}

// lengthWeights is the aggregate length distribution: (length, weight)
// modeled on published 1999 BGP table statistics — /24 dominates, /16 is
// the second mode, classful /8s survive in small numbers.
var aggregateLengths = []struct{ length, weight int }{
	{8, 1}, {13, 1}, {14, 2}, {15, 2}, {16, 22},
	{17, 4}, {18, 6}, {19, 10}, {20, 7}, {21, 7}, {22, 9}, {23, 10}, {24, 70},
}

// v6AggregateLengths models an aggregated IPv6 routing table the way the
// paper assumes ("assuming IPv6 uses aggregation in a way similar to
// IPv4"): allocation-size modes at /32 and /48 with a spread between.
var v6AggregateLengths = []struct{ length, weight int }{
	{20, 1}, {24, 2}, {28, 4}, {32, 30}, {36, 8}, {40, 12}, {44, 10}, {48, 50}, {56, 6},
}

// NewUniverse builds a universe of the given size (number of prefixes).
//
// The universe is organized into families: an aggregate plus the
// more-specifics carved inside it. Aggregates are mutually non-nested, and
// the sampling order keeps each family contiguous, so nesting relations
// travel together between router tables. That models the paper's §3
// argument for why neighboring tables are similar — BGP discourages
// aggregating prefixes one does not administer, so a prefix and its
// more-specifics propagate together — and leaves the problematic-clue rate
// (Table 2) controlled purely by RouterSpec.Divergence.
func NewUniverse(seed int64, size int) *Universe {
	return buildUniverse(seed, size, ip.IPv4, aggregateLengths, randomBase, 9, 30)
}

// NewUniverseV6 builds an IPv6 universe (for the paper's §6 remark that
// the clue scheme "is expected to give similar performances in IPv6 while
// the Log W technique does not scale as good").
func NewUniverseV6(seed int64, size int) *Universe {
	return buildUniverse(seed, size, ip.IPv6, v6AggregateLengths, randomBaseV6, 16, 64)
}

func buildUniverse(seed int64, size int, fam ip.Family,
	lengths []struct{ length, weight int },
	base func(*rand.Rand) ip.Addr, maxExtra, maxLen int) *Universe {
	u := &Universe{
		seed:  seed,
		fam:   fam,
		index: make(map[ip.Prefix]bool, size),
	}
	rng := rand.New(rand.NewSource(seed))
	totalW := 0
	for _, lw := range lengths {
		totalW += lw.weight
	}
	sampleLen := func() int {
		r := rng.Intn(totalW)
		for _, lw := range lengths {
			if r < lw.weight {
				return lw.length
			}
			r -= lw.weight
		}
		return lengths[len(lengths)-1].length
	}
	// Phase 1: mutually non-nested aggregates (about two thirds of the
	// universe), rejection-sampled against an ancestor/descendant check.
	nAgg := size * 2 / 3
	aggTrie := trie.New(fam)
	for len(u.aggs) < nAgg {
		p := ip.PrefixFrom(base(rng), sampleLen())
		if u.index[p] {
			continue
		}
		if _, _, ok := aggTrie.BMPOf(p); ok {
			continue // nests under an existing aggregate
		}
		if node := aggTrie.Find(p); node != nil {
			continue // an existing aggregate nests under p
		}
		aggTrie.Insert(p, 0)
		u.index[p] = true
		u.aggs = append(u.aggs, p)
	}
	// Phase 2: more-specifics carved inside random aggregates (the nesting
	// that makes a clue's vertex have descendants).
	families := make([][]ip.Prefix, len(u.aggs))
	for n := nAgg; n < size; {
		i := rng.Intn(len(u.aggs))
		agg := u.aggs[i]
		l := agg.Len() + 1 + rng.Intn(maxExtra)
		if l > maxLen {
			continue
		}
		p := ip.PrefixFrom(randomWithin(rng, agg), l)
		if u.index[p] {
			continue
		}
		u.index[p] = true
		families[i] = append(families[i], p)
		n++
	}
	// Emit families contiguously in shuffled family order.
	order := rng.Perm(len(u.aggs))
	u.prefixes = make([]ip.Prefix, 0, size)
	for _, i := range order {
		u.prefixes = append(u.prefixes, u.aggs[i])
		u.prefixes = append(u.prefixes, families[i]...)
	}
	return u
}

// randomBaseV6 returns a random address inside the 2001::/16-style global
// unicast space.
func randomBaseV6(rng *rand.Rand) ip.Addr {
	hi := uint64(0x2001)<<48 | rng.Uint64()&0x0000FFFF_FFFFFFFF
	return ip.AddrFrom128(hi, rng.Uint64())
}

// randomBase returns a random address with a 1999-plausible first octet
// (no loopback, no class D/E, weighted toward the then-populated ranges).
func randomBase(rng *rand.Rand) ip.Addr {
	var first int
	switch r := rng.Intn(10); {
	case r < 4:
		first = 128 + rng.Intn(64) // classic class B space
	case r < 8:
		first = 192 + rng.Intn(24) // class C swamp
	default:
		first = 24 + rng.Intn(100) // sparse class A space
		if first == 127 {
			first = 126
		}
	}
	return ip.AddrFrom32(uint32(first)<<24 | rng.Uint32()&0x00FFFFFF)
}

// randomWithin returns a random address inside prefix p.
func randomWithin(rng *rand.Rand, p ip.Prefix) ip.Addr {
	var a ip.Addr
	if p.Family() == ip.IPv4 {
		a = ip.AddrFrom32(rng.Uint32())
	} else {
		a = ip.AddrFrom128(rng.Uint64(), rng.Uint64())
	}
	for i := 0; i < p.Len(); i++ {
		a = a.WithBit(i, p.Bit(i))
	}
	return a
}

// Size returns the number of prefixes in the universe.
func (u *Universe) Size() int { return len(u.prefixes) }

// Contains reports whether p is a universe prefix.
func (u *Universe) Contains(p ip.Prefix) bool { return u.index[p] }

// RouterSpec describes one synthetic router.
type RouterSpec struct {
	Name string
	// Size is the table size (Table 1 of the paper).
	Size int
	// Divergence is the fraction of universe prefixes this router drops
	// while sampling, plus the fraction of its table that is private
	// more-specifics nobody else carries. 0 means the router is a pure
	// prefix of the universe order; 0.01–0.05 reproduces the paper's
	// intersection (Table 3) and problematic-clue (Table 2) bands.
	Divergence float64
	// Hops are the next-hop names routes are spread over (round-robin
	// with jitter). Defaults to a single hop named after the router's
	// peer port if empty.
	Hops []string
}

// Router samples a router table from the universe per spec. Sampling is
// deterministic in the universe seed and the router name.
func (u *Universe) Router(spec RouterSpec) *fib.Table {
	rng := rand.New(rand.NewSource(u.seed ^ int64(hashName(spec.Name))))
	hops := spec.Hops
	if len(hops) == 0 {
		hops = []string{spec.Name + "-peer"}
	}
	t := fib.New(spec.Name, u.fam)
	nPriv := int(spec.Divergence * float64(spec.Size))
	nShared := spec.Size - nPriv
	// Shared part: walk the universe order, skipping a Divergence fraction
	// (each router skips different prefixes, which is what creates the
	// receiver-only more-specifics behind problematic clues).
	for _, p := range u.prefixes {
		if t.Len() >= nShared {
			break
		}
		if rng.Float64() < spec.Divergence {
			continue
		}
		t.Add(p, hops[rng.Intn(len(hops))])
	}
	// Private part: more-specifics under universe aggregates, absent from
	// the universe so no other router carries them.
	maxLen := 30
	if u.fam == ip.IPv6 {
		maxLen = 64
	}
	for added := 0; added < nPriv; {
		agg := u.aggs[rng.Intn(len(u.aggs))]
		l := agg.Len() + 1 + rng.Intn(8)
		if l > maxLen {
			continue
		}
		p := ip.PrefixFrom(randomWithin(rng, agg), l)
		if u.index[p] || t.Contains(p) {
			continue
		}
		t.Add(p, hops[rng.Intn(len(hops))])
		added++
	}
	return t
}

// hashName is a small FNV-1a so router identity perturbs the sampling seed.
func hashName(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// Paper snapshot sizes (Table 1). The MAE-East total is partly illegible
// in the archived scan ("42,…"); 42,366 is used and recorded as an
// approximation in EXPERIMENTS.md.
const (
	SizeMAEEast = 42366
	SizeMAEWest = 23123
	SizePaix    = 5974
	SizeATT1    = 23414
	SizeATT2    = 60475
	SizeISPB1   = 56034
	SizeISPB2   = 55959
)

// PaperRouterNames lists the seven snapshots of §6 in table order.
var PaperRouterNames = []string{
	"MAE-East", "MAE-West", "Paix", "AT&T-1", "AT&T-2", "ISP-B-1", "ISP-B-2",
}

// PaperRouters generates the seven synthetic counterparts of the paper's
// snapshots. The route-server snapshots (MAE-*) diverge more from each
// other than the two same-ISP pairs, matching the asymmetry of Tables 2–3.
// Scale (0 < scale <= 1) shrinks every table proportionally so tests can
// run the full pipeline quickly; benchmarks use scale 1.
//
//cluevet:ctor - workload generator; panics on a bad scale at build time
func PaperRouters(seed int64, scale float64) map[string]*fib.Table {
	if scale <= 0 || scale > 1 {
		panic("synth: scale must be in (0, 1]")
	}
	sz := func(n int) int {
		s := int(float64(n) * scale)
		if s < 10 {
			s = 10
		}
		return s
	}
	// Universe sized to the biggest router plus headroom for skips.
	u := NewUniverse(seed, sz(SizeATT2)+sz(SizeATT2)/8)
	specs := []RouterSpec{
		{Name: "MAE-East", Size: sz(SizeMAEEast), Divergence: 0.020},
		{Name: "MAE-West", Size: sz(SizeMAEWest), Divergence: 0.025},
		{Name: "Paix", Size: sz(SizePaix), Divergence: 0.030},
		{Name: "AT&T-1", Size: sz(SizeATT1), Divergence: 0.004},
		{Name: "AT&T-2", Size: sz(SizeATT2), Divergence: 0.004},
		{Name: "ISP-B-1", Size: sz(SizeISPB1), Divergence: 0.003},
		{Name: "ISP-B-2", Size: sz(SizeISPB2), Divergence: 0.003},
	}
	out := make(map[string]*fib.Table, len(specs))
	for _, s := range specs {
		out[s.Name] = u.Router(s)
	}
	return out
}

// Workload generates destination addresses the way §6 does: "A random
// destination is chosen, and its BMP in R1 is computed. Then we verified
// that this BMP is a vertex in the trie of R2, and if so the processing of
// that packet at R2 was carried out." Destinations are drawn inside the
// sender's prefixes (a random destination in the 1999 backbone almost
// always matched something; in a sparse synthetic table it would not).
type Workload struct {
	rng      *rand.Rand
	prefixes []ip.Prefix
}

// NewWorkload prepares a workload generator over the sender's table.
func NewWorkload(seed int64, sender *fib.Table) *Workload {
	return &Workload{
		rng:      rand.New(rand.NewSource(seed)),
		prefixes: sender.Prefixes(),
	}
}

// Next returns a random destination matching some sender prefix.
func (w *Workload) Next() ip.Addr {
	p := w.prefixes[w.rng.Intn(len(w.prefixes))]
	return randomWithin(w.rng, p)
}

// FlowWorkload models traffic as flows: destinations are drawn from a
// Zipf distribution over the sender's prefixes (a few destinations carry
// most packets, as real traffic does) and each flow emits a run of packets
// to one destination. It exists to reproduce the paper's §1/§2 argument
// against per-flow label setup: "there is no work in a new connection
// setup, the processing gain is achieved even if only one packet is sent
// in this flow (e.g., UDP)" — clue entries are shared by every flow whose
// packets carry the same clue, so short flows lose nothing.
type FlowWorkload struct {
	rng      *rand.Rand
	zipf     *rand.Zipf
	prefixes []ip.Prefix
	flowLen  int
	// current flow state
	dest      ip.Addr
	remaining int
}

// NewFlowWorkload prepares a flow generator: Zipf skew s (>1; ~1.2 is
// web-like), and a fixed number of packets per flow (≥1).
func NewFlowWorkload(seed int64, sender *fib.Table, s float64, flowLen int) *FlowWorkload {
	if flowLen < 1 {
		panic("synth: flowLen must be >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	prefixes := sender.Prefixes()
	return &FlowWorkload{
		rng:      rng,
		zipf:     rand.NewZipf(rng, s, 1, uint64(len(prefixes)-1)),
		prefixes: prefixes,
		flowLen:  flowLen,
	}
}

// Next returns the next packet's destination and whether it starts a new
// flow.
func (w *FlowWorkload) Next() (dest ip.Addr, newFlow bool) {
	if w.remaining == 0 {
		p := w.prefixes[int(w.zipf.Uint64())]
		w.dest = randomWithin(w.rng, p)
		w.remaining = w.flowLen
		newFlow = true
	}
	w.remaining--
	return w.dest, newFlow
}
