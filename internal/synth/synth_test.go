package synth

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fib"
	"repro/internal/ip"
)

func TestUniverseDeterministic(t *testing.T) {
	a := NewUniverse(7, 500)
	b := NewUniverse(7, 500)
	if a.Size() != 500 || b.Size() != 500 {
		t.Fatalf("sizes %d %d", a.Size(), b.Size())
	}
	for i := range a.prefixes {
		if a.prefixes[i] != b.prefixes[i] {
			t.Fatal("universe generation not deterministic")
		}
	}
	c := NewUniverse(8, 500)
	same := 0
	for i := range a.prefixes {
		if a.prefixes[i] == c.prefixes[i] {
			same++
		}
	}
	if same == 500 {
		t.Error("different seeds produced identical universes")
	}
}

func TestUniverseLengthDistribution(t *testing.T) {
	u := NewUniverse(1, 5000)
	var hist [33]int
	for _, p := range u.prefixes {
		if p.Len() < 8 || p.Len() > 30 {
			t.Fatalf("prefix length %d out of [8,30]: %v", p.Len(), p)
		}
		hist[p.Len()]++
	}
	// /24 must dominate; /16 must be a clear second mode.
	if hist[24] < 1000 {
		t.Errorf("/24 count = %d, expected the dominant mode", hist[24])
	}
	if hist[16] < 200 {
		t.Errorf("/16 count = %d, expected a strong mode", hist[16])
	}
	// A material fraction of prefixes must be nested under another
	// universe prefix (the paper's clue dynamics depend on nesting).
	tr := fib.New("u", ip.IPv4)
	for _, p := range u.prefixes {
		tr.Add(p, "x")
	}
	trie := tr.Trie()
	nested := 0
	for _, p := range u.prefixes {
		if bp, _, ok := trie.BMPOf(p.Parent()); ok && bp.Len() > 0 && bp.Len() < p.Len() {
			nested++
		}
	}
	if frac := float64(nested) / float64(len(u.prefixes)); frac < 0.15 || frac > 0.70 {
		t.Errorf("nested fraction = %.2f, want a 1999-plausible 0.15..0.70", frac)
	}
}

func TestRouterSizeAndMembership(t *testing.T) {
	u := NewUniverse(2, 3000)
	tab := u.Router(RouterSpec{Name: "R", Size: 1000, Divergence: 0.02, Hops: []string{"a", "b"}})
	if tab.Len() != 1000 {
		t.Fatalf("router size = %d, want 1000", tab.Len())
	}
	private := 0
	for _, p := range tab.Prefixes() {
		if !u.Contains(p) {
			private++
		}
	}
	want := int(0.02 * 1000)
	if private != want {
		t.Errorf("private prefixes = %d, want %d", private, want)
	}
	// Deterministic per name.
	tab2 := u.Router(RouterSpec{Name: "R", Size: 1000, Divergence: 0.02, Hops: []string{"a", "b"}})
	if fib.Intersection(tab, tab2) != 1000 {
		t.Error("router sampling not deterministic")
	}
	// Different name, different sample.
	tab3 := u.Router(RouterSpec{Name: "S", Size: 1000, Divergence: 0.02})
	if fib.Intersection(tab, tab3) == 1000 {
		t.Error("different routers produced identical tables")
	}
}

func TestNeighborSimilarityBand(t *testing.T) {
	u := NewUniverse(3, 4000)
	a := u.Router(RouterSpec{Name: "A", Size: 2000, Divergence: 0.01})
	b := u.Router(RouterSpec{Name: "B", Size: 3000, Divergence: 0.01})
	inter := fib.Intersection(a, b)
	// The paper's Table 3: intersections are 94–99.9% of the smaller table.
	if frac := float64(inter) / 2000; frac < 0.90 || frac > 1.0 {
		t.Errorf("intersection fraction = %.3f, want ≥0.90 (Table 3 band)", frac)
	}
}

func TestProblematicCluesBand(t *testing.T) {
	// Scaled-down counterparts of the paper's routers: the problematic
	// fraction (Table 2) must stay under 10% of the sender's clue set, and
	// Claim-1 coverage correspondingly above 90% (the paper reports
	// 95–99.5% at full scale).
	routers := PaperRouters(99, 0.05)
	for _, pair := range [][2]string{{"AT&T-1", "AT&T-2"}, {"MAE-East", "MAE-West"}} {
		s, r := routers[pair[0]], routers[pair[1]]
		st, rt := s.Trie(), r.Trie()
		inSender := func(p ip.Prefix) bool { return st.Contains(p) }
		clues := s.Prefixes()
		bad := core.CountProblematic(rt, clues, inSender)
		if frac := float64(bad) / float64(len(clues)); frac > 0.10 {
			t.Errorf("%s->%s problematic fraction %.3f > 0.10 (%d of %d)",
				pair[0], pair[1], frac, bad, len(clues))
		}
	}
}

func TestPaperRoutersSizes(t *testing.T) {
	routers := PaperRouters(1, 0.02)
	if len(routers) != 7 {
		t.Fatalf("router count = %d", len(routers))
	}
	for _, name := range PaperRouterNames {
		if routers[name] == nil {
			t.Fatalf("missing router %q", name)
		}
	}
	// Relative sizes must follow Table 1's ordering.
	if routers["Paix"].Len() >= routers["MAE-West"].Len() ||
		routers["MAE-West"].Len() >= routers["MAE-East"].Len() ||
		routers["MAE-East"].Len() >= routers["ISP-B-1"].Len() ||
		routers["ISP-B-1"].Len() >= routers["AT&T-2"].Len() {
		t.Error("router size ordering does not match Table 1")
	}
}

func TestPaperRoutersBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("scale 0 should panic")
		}
	}()
	PaperRouters(1, 0)
}

func TestWorkloadDestinationsMatchSender(t *testing.T) {
	u := NewUniverse(4, 2000)
	tab := u.Router(RouterSpec{Name: "W", Size: 800, Divergence: 0.01})
	tr := tab.Trie()
	w := NewWorkload(5, tab)
	for i := 0; i < 2000; i++ {
		d := w.Next()
		if _, _, ok := tr.Lookup(d, nil); !ok {
			t.Fatalf("workload destination %v has no BMP at the sender", d)
		}
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	u := NewUniverse(4, 1000)
	tab := u.Router(RouterSpec{Name: "W", Size: 400, Divergence: 0})
	w1 := NewWorkload(9, tab)
	w2 := NewWorkload(9, tab)
	for i := 0; i < 100; i++ {
		if w1.Next() != w2.Next() {
			t.Fatal("workload not deterministic")
		}
	}
}

func TestUniverseV6(t *testing.T) {
	u := NewUniverseV6(5, 2000)
	if u.Size() != 2000 {
		t.Fatalf("v6 universe size = %d", u.Size())
	}
	for _, p := range u.prefixes {
		if p.Family() != ip.IPv6 {
			t.Fatalf("non-v6 prefix %v in v6 universe", p)
		}
		if p.Len() < 20 || p.Len() > 64 {
			t.Fatalf("v6 prefix length %d out of [20,64]", p.Len())
		}
	}
	a := u.Router(RouterSpec{Name: "A6", Size: 800, Divergence: 0.01})
	b := u.Router(RouterSpec{Name: "B6", Size: 900, Divergence: 0.01})
	if a.Family() != ip.IPv6 || a.Len() != 800 {
		t.Fatalf("v6 router: fam %v len %d", a.Family(), a.Len())
	}
	if frac := float64(fib.Intersection(a, b)) / 800; frac < 0.90 {
		t.Errorf("v6 pair intersection fraction = %.3f", frac)
	}
	// Workload destinations must match the v6 sender.
	w := NewWorkload(3, a)
	tr := a.Trie()
	for i := 0; i < 500; i++ {
		d := w.Next()
		if d.Family() != ip.IPv6 {
			t.Fatal("v6 workload produced a v4 destination")
		}
		if _, _, ok := tr.Lookup(d, nil); !ok {
			t.Fatalf("v6 workload destination %v misses the sender", d)
		}
	}
}

func TestFlowWorkload(t *testing.T) {
	u := NewUniverse(6, 2000)
	tab := u.Router(RouterSpec{Name: "F", Size: 800, Divergence: 0})
	tr := tab.Trie()
	w := NewFlowWorkload(3, tab, 1.2, 4)
	flows, packets := 0, 0
	var cur ip.Addr
	for i := 0; i < 4000; i++ {
		d, newFlow := w.Next()
		packets++
		if newFlow {
			flows++
			cur = d
		} else if d != cur {
			t.Fatal("destination changed mid-flow")
		}
		if _, _, ok := tr.Lookup(d, nil); !ok {
			t.Fatalf("flow destination %v misses the sender", d)
		}
	}
	if flows != packets/4 {
		t.Errorf("flows = %d, want %d", flows, packets/4)
	}
	// Zipf skew: the most popular BMP must dominate a uniform share.
	w2 := NewFlowWorkload(3, tab, 1.2, 1)
	counts := map[ip.Prefix]int{}
	for i := 0; i < 5000; i++ {
		d, _ := w2.Next()
		p, _, _ := tr.Lookup(d, nil)
		counts[p]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 100 { // uniform over 800 prefixes would give ~6
		t.Errorf("Zipf skew too weak: top prefix only %d of 5000", max)
	}
	defer func() {
		if recover() == nil {
			t.Error("flowLen 0 should panic")
		}
	}()
	NewFlowWorkload(1, tab, 1.2, 0)
}

func TestRandomWithin(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := ip.MustParsePrefix("10.32.0.0/11")
	for i := 0; i < 200; i++ {
		if a := randomWithin(rng, p); !p.Contains(a) {
			t.Fatalf("randomWithin produced %v outside %v", a, p)
		}
	}
}
