package telemetry

// ExpBounds builds a geometric bucket ladder for NewHistogram: n bounds
// starting at lo, each subsequent bound the previous times factor,
// rounded and bumped to stay strictly increasing (the histogram
// constructor's invariant). It is the standard shape for latency
// histograms, where the interesting resolution is relative, not
// absolute: ExpBounds(1000, 2, 20) spans 1 µs to ~0.5 s in nanoseconds
// at a constant ~2× relative error.
func ExpBounds(lo uint64, factor float64, n int) []uint64 {
	if n <= 0 {
		return nil
	}
	if lo == 0 {
		lo = 1
	}
	if factor <= 1 {
		factor = 2
	}
	bounds := make([]uint64, 0, n)
	f := float64(lo)
	prev := uint64(0)
	for i := 0; i < n; i++ {
		b := uint64(f + 0.5)
		if b <= prev {
			b = prev + 1
		}
		bounds = append(bounds, b)
		prev = b
		f *= factor
	}
	return bounds
}
