package telemetry

import "testing"

func TestExpBounds(t *testing.T) {
	b := ExpBounds(1000, 2, 5)
	want := []uint64{1000, 2000, 4000, 8000, 16000}
	if len(b) != len(want) {
		t.Fatalf("len = %d, want %d", len(b), len(want))
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds[%d] = %d, want %d", i, b[i], want[i])
		}
	}
}

func TestExpBoundsStrictlyIncreasing(t *testing.T) {
	// A factor close to 1 would produce duplicate rounded bounds without
	// the bump; the result must still satisfy the histogram invariant.
	for _, tc := range []struct {
		lo     uint64
		factor float64
		n      int
	}{
		{1, 1.05, 40},
		{0, 0.5, 10}, // degenerate inputs clamp instead of panicking
		{7, 3, 30},
	} {
		b := ExpBounds(tc.lo, tc.factor, tc.n)
		if len(b) != tc.n {
			t.Fatalf("ExpBounds(%d,%v,%d) len = %d", tc.lo, tc.factor, tc.n, len(b))
		}
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				t.Fatalf("ExpBounds(%d,%v,%d) not strictly increasing at %d: %v",
					tc.lo, tc.factor, tc.n, i, b[i-1:i+1])
			}
		}
		// Must be accepted by the histogram constructor.
		NewRegistry().NewHistogram("b", "", b)
	}
}

func TestExpBoundsEmpty(t *testing.T) {
	if b := ExpBounds(1, 2, 0); b != nil {
		t.Fatalf("n=0 returned %v", b)
	}
}
