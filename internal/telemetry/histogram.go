package telemetry

import (
	"fmt"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram of unsigned integer observations
// (reference counts, nanoseconds, batch sizes). Bucket bounds are chosen
// at construction; an observation is a bounded linear scan over the
// bounds (a handful of comparisons over one or two cache lines — cheaper
// than a binary search at these sizes) plus two atomic adds into the
// recording shard. Nothing on the record path allocates or locks.
//
// Storage is one flat cell array: shardCount shards, each holding the
// per-bucket counts (including the implicit +Inf bucket) followed by the
// shard's value sum, with the stride rounded up to whole cache lines so
// shards never false-share.
type Histogram struct {
	labels []Label
	bounds []uint64        // finite upper bounds, strictly increasing
	stride int             // cells per shard, cache-line aligned
	cells  []atomic.Uint64 // shardCount × stride
	mask   uint32
}

// cellsPerLine is how many uint64 cells fill one cache line.
const cellsPerLine = 8

//cluevet:ctor
func newHistogram(bounds []uint64, labels []Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not strictly increasing at %d", i))
		}
	}
	b := append([]uint64(nil), bounds...) // defensive copy: bounds are read on every Observe
	stride := len(b) + 2                  // finite buckets + +Inf bucket + sum
	stride = (stride + cellsPerLine - 1) / cellsPerLine * cellsPerLine
	return &Histogram{
		labels: labels,
		bounds: b,
		stride: stride,
		cells:  make([]atomic.Uint64, int(shardCount)*stride),
		mask:   shardCount - 1,
	}
}

// Observe records one value.
//
//cluevet:hotpath
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	base := 0
	if h.mask != 0 {
		base = int(randUint32()&h.mask) * h.stride
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.cells[base+i].Add(1)
	h.cells[base+len(h.bounds)+1].Add(v)
}

// Bounds returns the finite bucket bounds (the +Inf bucket is implicit).
func (h *Histogram) Bounds() []uint64 {
	if h == nil {
		return nil
	}
	return append([]uint64(nil), h.bounds...)
}

// Snapshot sums the shards: per-bucket counts (the last entry is the
// +Inf bucket), the total observation count, and the value sum.
func (h *Histogram) Snapshot() (buckets []uint64, count, sum uint64) {
	if h == nil {
		return nil, 0, 0
	}
	buckets = make([]uint64, len(h.bounds)+1)
	for s := 0; s < int(h.mask)+1; s++ {
		base := s * h.stride
		for i := range buckets {
			buckets[i] += h.cells[base+i].Load()
		}
		sum += h.cells[base+len(h.bounds)+1].Load()
	}
	for _, b := range buckets {
		count += b
	}
	return buckets, count, sum
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) from the bucket
// counts, Prometheus-style: find the bucket holding the q-th
// observation and interpolate linearly inside it. Values in the +Inf
// bucket report the largest finite bound (the histogram cannot resolve
// beyond its bounds — size them so the tail bucket stays empty). An
// empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	buckets, count, _ := h.Snapshot()
	if count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(count)
	var cum float64
	for i, b := range buckets {
		prev := cum
		cum += float64(b)
		if cum < rank || b == 0 {
			continue
		}
		if i >= len(h.bounds) { // +Inf bucket: clamp to the last finite bound
			if len(h.bounds) == 0 {
				return 0
			}
			return float64(h.bounds[len(h.bounds)-1])
		}
		lo := float64(0)
		if i > 0 {
			lo = float64(h.bounds[i-1])
		}
		hi := float64(h.bounds[i])
		return lo + (hi-lo)*(rank-prev)/float64(b)
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return float64(h.bounds[len(h.bounds)-1])
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	_, count, _ := h.Snapshot()
	return count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	_, _, sum := h.Snapshot()
	return sum
}

// Reset zeroes every cell. Like Counter.Reset, use at quiescent points.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.cells {
		h.cells[i].Store(0)
	}
}
