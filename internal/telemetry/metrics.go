package telemetry

// Default bucket bounds for the three per-packet signals. The refs
// buckets are tuned to the paper's cost model, where the interesting
// distinctions are "exactly one reference" (the Claim-1 optimal case),
// "a few" (a short restricted search) and "a full lookup's worth"; the
// ns buckets cover the compiled fast path (tens of ns) up to interpreted
// full lookups under contention; the batch buckets are powers of two up
// to the sizes ProcessBatch is used with.
var (
	DefaultRefsBuckets  = []uint64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}
	DefaultNsBuckets    = []uint64{50, 100, 200, 400, 800, 1600, 3200, 6400, 12800, 25600, 51200, 102400}
	DefaultBatchBuckets = []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
)

// PacketMetrics bundles the per-packet signals one processing surface
// (a clue table, a compiled snapshot, a router) exports: packets by clue
// outcome, memory references per packet, wall-clock nanoseconds per
// packet, and batch sizes. The outcome ordinals and their label strings
// are supplied by the caller (core.Outcome values and OutcomeLabels in
// this repo), so the package stays decoupled from the packages it
// instruments.
//
// A nil *PacketMetrics records nothing, so instrumented hot paths carry
// no enable/disable branches beyond the nil check inside each method.
type PacketMetrics struct {
	outcomes *CounterVec
	refs     *Histogram
	ns       *Histogram
	batch    *Histogram
}

// NewPacketMetrics registers the bundle under prefix: per-outcome
// counters prefix_packets_total{outcome=...}, and histograms
// prefix_refs_per_packet, prefix_ns_per_packet, prefix_batch_size.
// constLabels (engine, discipline, router, ...) are attached to every
// series.
func NewPacketMetrics(r *Registry, prefix string, outcomeLabels []string, constLabels ...Label) *PacketMetrics {
	return &PacketMetrics{
		outcomes: r.NewCounterVec(prefix+"_packets_total",
			"packets processed, by clue outcome", "outcome", outcomeLabels, constLabels...),
		refs: r.NewHistogram(prefix+"_refs_per_packet",
			"memory references charged per packet (the paper's cost model)", DefaultRefsBuckets, constLabels...),
		ns: r.NewHistogram(prefix+"_ns_per_packet",
			"wall-clock nanoseconds per packet", DefaultNsBuckets, constLabels...),
		batch: r.NewHistogram(prefix+"_batch_size",
			"packets per ProcessBatch call", DefaultBatchBuckets, constLabels...),
	}
}

// Record counts one packet: its outcome ordinal and the memory
// references it was charged.
//
//cluevet:hotpath
func (m *PacketMetrics) Record(outcome int, refs uint64) {
	if m == nil {
		return
	}
	m.outcomes.Inc(outcome)
	m.refs.Observe(refs)
}

// ObserveNs records one packet's wall-clock cost. It is separate from
// Record because only callers that own a clock (the daemon, not the
// simulators) can charge it.
//
//cluevet:hotpath
func (m *PacketMetrics) ObserveNs(ns uint64) {
	if m == nil {
		return
	}
	m.ns.Observe(ns)
}

// ObserveBatch records one batch's size.
//
//cluevet:hotpath
func (m *PacketMetrics) ObserveBatch(n uint64) {
	if m == nil {
		return
	}
	m.batch.Observe(n)
}

// OutcomeCount returns the packets recorded with outcome ordinal i.
func (m *PacketMetrics) OutcomeCount(i int) uint64 {
	if m == nil {
		return 0
	}
	return m.outcomes.Value(i)
}

// Packets returns the total packets recorded (the sum over outcomes).
func (m *PacketMetrics) Packets() uint64 {
	if m == nil {
		return 0
	}
	var sum uint64
	for i := 0; i < m.outcomes.Len(); i++ {
		sum += m.outcomes.Value(i)
	}
	return sum
}

// Refs returns the total memory references recorded across all packets.
func (m *PacketMetrics) Refs() uint64 {
	if m == nil {
		return 0
	}
	return m.refs.Sum()
}

// Reset zeroes the bundle (counters and histograms).
func (m *PacketMetrics) Reset() {
	if m == nil {
		return
	}
	m.outcomes.Reset()
	m.refs.Reset()
	m.ns.Reset()
	m.batch.Reset()
}
