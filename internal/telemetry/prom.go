package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4). Families are emitted in name order
// so scrapes are diffable; series within a family keep registration
// order. The exporter only reads shard sums, so a scrape never blocks a
// recorder.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		switch f.kind {
		case kindCounter:
			for _, c := range f.counters {
				fmt.Fprintf(&b, "%s%s %d\n", f.name, formatLabels(c.labels), c.Value())
			}
		case kindGauge:
			for _, g := range f.gauges {
				fmt.Fprintf(&b, "%s%s %d\n", f.name, formatLabels(g.labels), g.Value())
			}
		case kindHistogram:
			for _, h := range f.histograms {
				writeHistogram(&b, f.name, h)
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram emits the cumulative _bucket series plus _sum and
// _count, per the Prometheus histogram convention.
func writeHistogram(b *strings.Builder, name string, h *Histogram) {
	buckets, count, sum := h.Snapshot()
	bounds := h.bounds
	var cum uint64
	for i, n := range buckets {
		cum += n
		le := "+Inf"
		if i < len(bounds) {
			le = fmt.Sprintf("%d", bounds[i])
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, formatLabelsExtra(h.labels, "le", le), cum)
	}
	fmt.Fprintf(b, "%s_sum%s %d\n", name, formatLabels(h.labels), sum)
	fmt.Fprintf(b, "%s_count%s %d\n", name, formatLabels(h.labels), count)
}

// formatLabels renders {k="v",...}, or the empty string for no labels.
func formatLabels(labels []Label) string {
	return formatLabelsExtra(labels, "", "")
}

// formatLabelsExtra renders labels plus one trailing extra pair (used
// for the histogram "le" label), which is appended last per convention.
func formatLabelsExtra(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes backslash, double-quote and newline, per the
// text-format spec.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format, for mounting at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
