// Package telemetry is the repo's uniform accounting layer: the cost
// measurement the paper is built around (memory references per packet,
// per router, per clue outcome — §3.5, §6) as a first-class, concurrency-
// safe, continuously queryable signal instead of ad-hoc structs scattered
// across the simulators and daemons.
//
// The design constraints come from the hot path it instruments
// (internal/fastpath pins 0 allocs/op with telemetry recording enabled):
//
//   - Counters are sharded across cache-line-padded atomic cells, so a
//     record is one atomic add on a line that is, with high probability,
//     not contended — no locks, no allocations, wait-free.
//   - Histograms have fixed bucket bounds chosen at construction; an
//     observation is a bounded linear scan over a handful of bounds plus
//     two atomic adds into the recording shard. Nothing on the record
//     path allocates, takes a lock, or calls fmt.
//   - Reads (Value, Snapshot, the Prometheus exporter) sum the shards
//     without stopping writers. A sum taken during concurrent recording
//     is a consistent-enough snapshot: every add is either fully counted
//     or not yet counted, and the total never goes backwards between
//     scrapes (except across an explicit Reset).
//
// All record-side methods are nil-receiver safe, mirroring mem.Counter:
// a nil *Counter, *Histogram, *CounterVec, *PacketMetrics or *HopTracer
// records nothing, so instrumented code needs no "telemetry enabled?"
// branches.
package telemetry

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
)

// Label is one key="value" pair attached to a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// shardCount is the number of cells every counter and histogram spreads
// its adds across: the number of CPUs rounded up to a power of two (so
// shard selection is a mask, not a modulo), capped to keep the padded
// footprint of large registries bounded.
// randUint32 picks a recording shard: the runtime's per-thread generator
// behind math/rand/v2 — no lock, no allocation.
//
//cluevet:hotpath
func randUint32() uint32 { return rand.Uint32() }

var shardCount = func() uint32 {
	n := runtime.GOMAXPROCS(0)
	if n > 64 {
		n = 64
	}
	s := uint32(1)
	for int(s) < n {
		s <<= 1
	}
	return s
}()

// counterShard is one padded cell: the counter word plus enough padding
// to keep neighboring shards on distinct cache lines, so concurrent
// recorders do not false-share.
//
//cluevet:padded
type counterShard struct {
	n atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing (until Reset) sharded counter.
// The zero value is not usable; create counters through a Registry.
type Counter struct {
	labels []Label
	shards []counterShard
	mask   uint32
}

func newCounter(labels []Label) *Counter {
	return &Counter{labels: labels, shards: make([]counterShard, shardCount), mask: shardCount - 1}
}

// Inc adds one.
//
//cluevet:hotpath
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. It is wait-free: one cheap per-thread random draw to pick
// a shard (skipped when there is only one) and one atomic add.
//
//cluevet:hotpath
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	i := uint32(0)
	if c.mask != 0 {
		i = randUint32() & c.mask
	}
	c.shards[i].n.Add(n)
}

// Value returns the current total across shards.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].n.Load()
	}
	return sum
}

// Reset zeroes the counter. Adds racing a Reset land wholly before or
// wholly after it per shard; use Reset only at quiescent points (e.g.
// after a warm-up) when exact totals matter.
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	for i := range c.shards {
		c.shards[i].n.Store(0)
	}
}

// CounterVec is a dense vector of counters over one label key with a
// fixed, small value set (e.g. the eight clue outcomes), indexed by the
// value's ordinal so the record path is an array index — no map, no
// hashing, no allocation.
type CounterVec struct {
	counters []*Counter
}

// Inc increments the counter for ordinal i; out-of-range ordinals are
// ignored (a malformed label must not panic the data path).
//
//cluevet:hotpath
func (v *CounterVec) Inc(i int) {
	v.Add(i, 1)
}

// Add adds n to the counter for ordinal i.
//
//cluevet:hotpath
func (v *CounterVec) Add(i int, n uint64) {
	if v == nil || i < 0 || i >= len(v.counters) {
		return
	}
	v.counters[i].Add(n)
}

// Value returns the total for ordinal i (0 when out of range).
func (v *CounterVec) Value(i int) uint64 {
	if v == nil || i < 0 || i >= len(v.counters) {
		return 0
	}
	return v.counters[i].Value()
}

// Len returns the number of label values.
func (v *CounterVec) Len() int {
	if v == nil {
		return 0
	}
	return len(v.counters)
}

// At returns the counter for ordinal i, or nil when out of range —
// callers can hold it directly to skip the bounds check per record.
func (v *CounterVec) At(i int) *Counter {
	if v == nil || i < 0 || i >= len(v.counters) {
		return nil
	}
	return v.counters[i]
}

// Reset zeroes every counter in the vector.
func (v *CounterVec) Reset() {
	if v == nil {
		return
	}
	for _, c := range v.counters {
		c.Reset()
	}
}

// Gauge is a scrape-time callback: the exporter calls fn for the current
// value, so structure sizes (clue-table entries, learned counts) are
// always fresh without the structure pushing updates.
type Gauge struct {
	labels []Label
	fn     func() uint64
}

// Value returns the gauge's current value.
func (g *Gauge) Value() uint64 {
	if g == nil || g.fn == nil {
		return 0
	}
	return g.fn()
}

// metric kinds, matching the Prometheus TYPE names.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is all series registered under one metric name.
type family struct {
	name, help, kind string
	counters         []*Counter
	gauges           []*Gauge
	histograms       []*Histogram
}

// Registry holds metric families for export. Registration takes a lock;
// recording into registered metrics never does.
type Registry struct {
	mu       sync.Mutex
	families []*family
	index    map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*family)}
}

// lookupFamily returns (creating) the family for name, enforcing that a
// name keeps one kind and one help string. Registration-time only, never
// on the record path.
//
//cluevet:ctor
func (r *Registry) lookupFamily(name, help, kind string) *family {
	f := r.index[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.index[name] = f
		r.families = append(r.families, f)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as both %s and %s", name, f.kind, kind))
	}
	return f
}

// NewCounter registers and returns a counter series.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	c := newCounter(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookupFamily(name, help, kindCounter)
	f.counters = append(f.counters, c)
	return c
}

// NewCounterVec registers one counter per value of labelKey and returns
// the ordinal-indexed vector. constLabels are attached to every series.
func (r *Registry) NewCounterVec(name, help, labelKey string, labelVals []string, constLabels ...Label) *CounterVec {
	v := &CounterVec{counters: make([]*Counter, len(labelVals))}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookupFamily(name, help, kindCounter)
	for i, val := range labelVals {
		labels := make([]Label, 0, len(constLabels)+1)
		labels = append(labels, constLabels...)
		labels = append(labels, Label{Key: labelKey, Value: val})
		c := newCounter(labels)
		v.counters[i] = c
		f.counters = append(f.counters, c)
	}
	return v
}

// NewGauge registers a callback gauge.
func (r *Registry) NewGauge(name, help string, fn func() uint64, labels ...Label) *Gauge {
	g := &Gauge{labels: labels, fn: fn}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookupFamily(name, help, kindGauge)
	f.gauges = append(f.gauges, g)
	return g
}

// NewHistogram registers a fixed-bucket histogram. bounds are the
// inclusive upper bounds of the finite buckets, strictly increasing; a
// +Inf bucket is always appended.
func (r *Registry) NewHistogram(name, help string, bounds []uint64, labels ...Label) *Histogram {
	h := newHistogram(bounds, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookupFamily(name, help, kindHistogram)
	f.histograms = append(f.histograms, h)
	return h
}
