package telemetry

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/ip"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_total", "a test counter", L("engine", "simple"))
	if got := c.Value(); got != 0 {
		t.Fatalf("fresh counter Value = %d, want 0", got)
	}
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("Value after Reset = %d, want 0", got)
	}
}

func TestNilReceiversAreSafe(t *testing.T) {
	var c *Counter
	var v *CounterVec
	var h *Histogram
	var m *PacketMetrics
	var tr *HopTracer
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil Counter Value != 0")
	}
	c.Reset()
	v.Inc(0)
	v.Add(1, 2)
	if v.Value(0) != 0 || v.Len() != 0 || v.At(0) != nil {
		t.Fatal("nil CounterVec accessors not zero")
	}
	v.Reset()
	h.Observe(7)
	if h.Count() != 0 || h.Sum() != 0 || h.Bounds() != nil {
		t.Fatal("nil Histogram accessors not zero")
	}
	h.Reset()
	m.Record(1, 2)
	m.ObserveNs(3)
	m.ObserveBatch(4)
	if m.OutcomeCount(0) != 0 || m.Packets() != 0 || m.Refs() != 0 {
		t.Fatal("nil PacketMetrics accessors not zero")
	}
	m.Reset()
	tr.Record(HopEvent{})
	if tr.Total() != 0 || tr.Tail(5) != nil {
		t.Fatal("nil HopTracer accessors not zero")
	}
	tr.Reset()
}

func TestCounterVecOrdinals(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("pkts_total", "by outcome", "outcome", []string{"fd", "miss", "bad"})
	v.Inc(0)
	v.Add(2, 5)
	// Out-of-range ordinals must be ignored, not panic.
	v.Inc(-1)
	v.Inc(3)
	if v.Value(0) != 1 || v.Value(1) != 0 || v.Value(2) != 5 {
		t.Fatalf("vec values = %d,%d,%d", v.Value(0), v.Value(1), v.Value(2))
	}
	if v.Value(-1) != 0 || v.Value(99) != 0 {
		t.Fatal("out-of-range Value != 0")
	}
	if v.Len() != 3 {
		t.Fatalf("Len = %d, want 3", v.Len())
	}
	if v.At(1) == nil || v.At(7) != nil {
		t.Fatal("At bounds behavior wrong")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("refs", "refs per packet", []uint64{1, 4, 16})
	for _, v := range []uint64{0, 1, 2, 4, 5, 16, 17, 1000} {
		h.Observe(v)
	}
	buckets, count, sum := h.Snapshot()
	// le=1: {0,1}; le=4: {2,4}; le=16: {5,16}; +Inf: {17,1000}
	want := []uint64{2, 2, 2, 2}
	for i, w := range want {
		if buckets[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, buckets[i], w, buckets)
		}
	}
	if count != 8 {
		t.Fatalf("count = %d, want 8", count)
	}
	if sum != 0+1+2+4+5+16+17+1000 {
		t.Fatalf("sum = %d", sum)
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("Reset did not zero histogram")
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat", "latency", []uint64{10, 100, 1000})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report 0")
	}
	// 90 observations land in (10, 100], 10 in (100, 1000].
	for i := 0; i < 90; i++ {
		h.Observe(50)
	}
	for i := 0; i < 10; i++ {
		h.Observe(500)
	}
	// p50 interpolates inside the (10, 100] bucket: 10 + 90*(50/90).
	if got := h.Quantile(0.5); got < 10 || got > 100 {
		t.Fatalf("p50 = %v, want inside (10, 100]", got)
	}
	// p99 lands in the (100, 1000] bucket.
	if got := h.Quantile(0.99); got <= 100 || got > 1000 {
		t.Fatalf("p99 = %v, want inside (100, 1000]", got)
	}
	// Quantiles are monotone and clamped.
	if h.Quantile(-1) > h.Quantile(0.5) || h.Quantile(0.5) > h.Quantile(2) {
		t.Fatal("quantiles not monotone under clamping")
	}
	// +Inf-bucket observations clamp to the largest finite bound.
	h2 := r.NewHistogram("inf", "", []uint64{10})
	h2.Observe(10000)
	if got := h2.Quantile(0.5); got != 10 {
		t.Fatalf("overflow quantile = %v, want clamp to 10", got)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-increasing bounds")
		}
	}()
	NewRegistry().NewHistogram("bad", "", []uint64{1, 1})
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for kind conflict")
		}
	}()
	r.NewGauge("x_total", "", func() uint64 { return 0 })
}

func TestPacketMetrics(t *testing.T) {
	r := NewRegistry()
	m := NewPacketMetrics(r, "router", []string{"fd", "miss"}, L("router", "r1"))
	m.Record(0, 1)
	m.Record(0, 1)
	m.Record(1, 9)
	m.ObserveNs(120)
	m.ObserveBatch(16)
	if m.OutcomeCount(0) != 2 || m.OutcomeCount(1) != 1 {
		t.Fatalf("outcome counts %d,%d", m.OutcomeCount(0), m.OutcomeCount(1))
	}
	if m.Packets() != 3 {
		t.Fatalf("Packets = %d, want 3", m.Packets())
	}
	if m.Refs() != 11 {
		t.Fatalf("Refs = %d, want 11", m.Refs())
	}
	m.Reset()
	if m.Packets() != 0 || m.Refs() != 0 {
		t.Fatal("Reset did not zero PacketMetrics")
	}
}

func TestHopTracerRing(t *testing.T) {
	tr := NewHopTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(HopEvent{Router: "r", Refs: i})
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
	tail := tr.Tail(4)
	if len(tail) != 4 {
		t.Fatalf("Tail len = %d, want 4", len(tail))
	}
	for i, ev := range tail {
		wantSeq := uint64(6 + i)
		if ev.Seq != wantSeq || ev.Refs != int(wantSeq) {
			t.Fatalf("tail[%d] = %+v, want Seq=Refs=%d", i, ev, wantSeq)
		}
	}
	// Asking for more than capacity/recorded clamps.
	if got := len(tr.Tail(100)); got != 4 {
		t.Fatalf("Tail(100) len = %d, want 4", got)
	}
	tr.Reset()
	if tr.Total() != 0 || len(tr.Tail(4)) != 0 {
		t.Fatal("Reset did not clear tracer")
	}
}

func TestHopTracerTailPartial(t *testing.T) {
	tr := NewHopTracer(8)
	tr.Record(HopEvent{Router: "a"})
	tr.Record(HopEvent{Router: "b"})
	tail := tr.Tail(5)
	if len(tail) != 2 || tail[0].Router != "a" || tail[1].Router != "b" {
		t.Fatalf("partial tail = %+v", tail)
	}
}

func TestWriteTail(t *testing.T) {
	tr := NewHopTracer(4)
	a := ip.MustParseAddr("10.1.2.3")
	tr.Record(HopEvent{Router: "r1", Dest: a, ClueIn: 16, BMPLen: 24, Refs: 1, Outcome: "fd"})
	tr.Record(HopEvent{Router: "r2", Dest: a, ClueIn: -1, BMPLen: 24, Refs: 3, Outcome: "no-clue"})
	var b strings.Builder
	if err := tr.WriteTail(&b, 10); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "r1") || !strings.Contains(out, "clue=/16") {
		t.Fatalf("missing clue line in:\n%s", out)
	}
	if !strings.Contains(out, "clue=-") {
		t.Fatalf("missing no-clue marker in:\n%s", out)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("clue_packets_total", "packets", L("outcome", `with"quote`), L("engine", "simple"))
	c.Add(7)
	r.NewGauge("clue_entries", "table entries", func() uint64 { return 13 })
	h := r.NewHistogram("clue_refs", "refs", []uint64{1, 4})
	h.Observe(0)
	h.Observe(3)
	h.Observe(99)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP clue_packets_total packets\n",
		"# TYPE clue_packets_total counter\n",
		`clue_packets_total{outcome="with\"quote",engine="simple"} 7` + "\n",
		"# TYPE clue_entries gauge\n",
		"clue_entries 13\n",
		"# TYPE clue_refs histogram\n",
		`clue_refs_bucket{le="1"} 1` + "\n",
		`clue_refs_bucket{le="4"} 2` + "\n",
		`clue_refs_bucket{le="+Inf"} 3` + "\n",
		"clue_refs_sum 102\n",
		"clue_refs_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Families must be sorted by name: entries < packets_total < refs.
	if strings.Index(out, "clue_entries") > strings.Index(out, "clue_packets_total") ||
		strings.Index(out, "clue_packets_total") > strings.Index(out, "# HELP clue_refs") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

// TestConcurrentRecordScrapeReset is the -race gate for the registry:
// recorders, scrapers and a resetter all run concurrently.
func TestConcurrentRecordScrapeReset(t *testing.T) {
	r := NewRegistry()
	m := NewPacketMetrics(r, "router", []string{"fd", "miss", "bad"})
	tr := NewHopTracer(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				m.Record(i%3, uint64(i%7))
				m.ObserveNs(uint64(i))
				m.ObserveBatch(uint64(g + 1))
				tr.Record(HopEvent{Router: "r", Refs: i})
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		var b strings.Builder
		for i := 0; i < 50; i++ {
			b.Reset()
			if err := r.WritePrometheus(&b); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			_ = m.Packets()
			_ = tr.Tail(16)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			m.Reset()
			tr.Reset()
		}
	}()
	wg.Wait()
}

// TestRecordZeroAllocs is the package's own alloc gate: recording into
// counters, vectors, histograms and the PacketMetrics bundle must not
// allocate. (fastpath's alloc_test pins the same property end-to-end.)
func TestRecordZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	v := r.NewCounterVec("v_total", "", "outcome", []string{"a", "b"})
	h := r.NewHistogram("h", "", DefaultRefsBuckets)
	m := NewPacketMetrics(r, "m", []string{"a", "b"})
	for name, fn := range map[string]func(){
		"counter":   func() { c.Add(1) },
		"vec":       func() { v.Inc(1) },
		"histogram": func() { h.Observe(5) },
		"bundle": func() {
			m.Record(0, 2)
			m.ObserveNs(100)
			m.ObserveBatch(8)
		},
	} {
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}
