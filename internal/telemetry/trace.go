package telemetry

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/ip"
)

// HopEvent is one router's handling of one packet — the row type of the
// paper's Figure 1 (destination, clue carried in, best-matching-prefix
// length, references charged, outcome), captured live instead of printed
// once at the end of a run.
type HopEvent struct {
	Seq     uint64  // global sequence number, monotonically increasing
	Router  string  // router that processed the packet
	Dest    ip.Addr // packet destination
	ClueIn  int     // length of the clue carried in (-1: no clue)
	BMPLen  int     // best-matching-prefix length chosen
	Refs    int     // memory references charged at this hop
	Outcome string  // clue outcome label (core.Outcome.String())
}

// HopTracer is a fixed-capacity ring buffer of the most recent hop
// events. Recording overwrites the oldest entry once full, so a tracer
// costs O(capacity) memory regardless of run length. Unlike counters,
// the tracer takes a mutex per record: it exists for the simulator and
// the daemon's debug endpoint, not for the compiled fast path, and a
// mutex keeps whole events consistent. A nil *HopTracer records nothing.
type HopTracer struct {
	mu    sync.Mutex
	ring  []HopEvent
	total uint64 // events ever recorded; next Seq
}

// NewHopTracer creates a tracer keeping the last capacity events.
// Capacity is clamped to at least 1.
func NewHopTracer(capacity int) *HopTracer {
	if capacity < 1 {
		capacity = 1
	}
	return &HopTracer{ring: make([]HopEvent, capacity)}
}

// Record appends one hop event, assigning its sequence number.
func (t *HopTracer) Record(ev HopEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	ev.Seq = t.total
	t.ring[int(t.total%uint64(len(t.ring)))] = ev
	t.total++
	t.mu.Unlock()
}

// Total returns the number of events ever recorded (including ones the
// ring has since overwritten).
func (t *HopTracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Tail returns up to n of the most recent events, oldest first.
func (t *HopTracer) Tail(n int) []HopEvent {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	have := t.total
	if have > uint64(len(t.ring)) {
		have = uint64(len(t.ring))
	}
	if uint64(n) > have {
		n = int(have)
	}
	out := make([]HopEvent, n)
	for i := 0; i < n; i++ {
		seq := t.total - uint64(n) + uint64(i)
		out[i] = t.ring[int(seq%uint64(len(t.ring)))]
	}
	return out
}

// Reset drops all events and restarts sequence numbering.
func (t *HopTracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total = 0
	for i := range t.ring {
		t.ring[i] = HopEvent{}
	}
}

// WriteTail writes up to n recent events to w, one per line, in a
// fixed-width human-readable form (the live Figure 1).
func (t *HopTracer) WriteTail(w io.Writer, n int) error {
	events := t.Tail(n)
	for _, ev := range events {
		clue := "-"
		if ev.ClueIn >= 0 {
			clue = fmt.Sprintf("/%d", ev.ClueIn)
		}
		if _, err := fmt.Fprintf(w, "%8d  %-12s  %-18s  clue=%-4s bmp=/%-3d refs=%-3d %s\n",
			ev.Seq, ev.Router, ev.Dest, clue, ev.BMPLen, ev.Refs, ev.Outcome); err != nil {
			return err
		}
	}
	return nil
}
