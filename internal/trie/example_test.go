package trie_test

import (
	"fmt"

	"repro/internal/ip"
	"repro/internal/mem"
	"repro/internal/trie"
)

// The classic best-matching-prefix walk, with the paper's cost metric.
func ExampleTrie_Lookup() {
	t := trie.New(ip.IPv4)
	t.Insert(ip.MustParsePrefix("10.0.0.0/8"), 1)
	t.Insert(ip.MustParsePrefix("10.1.0.0/16"), 2)

	var refs mem.Counter
	p, hop, ok := t.Lookup(ip.MustParseAddr("10.1.2.3"), &refs)
	fmt.Println(p, hop, ok, refs.Count(), "references")
	// Output:
	// 10.1.0.0/16 2 true 17 references
}

// Claim 1: with the sender holding the same /16, the receiver-only /24 is
// blocked — no path down from the clue reaches a receiver prefix first.
func ExampleTrie_Claim1Holds() {
	receiver := trie.New(ip.IPv4)
	receiver.Insert(ip.MustParsePrefix("10.0.0.0/8"), 0)
	receiver.Insert(ip.MustParsePrefix("10.1.0.0/16"), 0)

	sender := trie.New(ip.IPv4)
	sender.Insert(ip.MustParsePrefix("10.0.0.0/8"), 0)

	clue := receiver.Find(ip.MustParsePrefix("10.0.0.0/8"))
	fmt.Println("sender lacks the /16:", receiver.Claim1Holds(clue, sender.Contains))

	sender.Insert(ip.MustParsePrefix("10.1.0.0/16"), 0)
	fmt.Println("sender has the /16: ", receiver.Claim1Holds(clue, sender.Contains))
	// Output:
	// sender lacks the /16: false
	// sender has the /16:  true
}
