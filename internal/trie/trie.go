// Package trie implements the binary prefix trie of §3.1 of the paper: the
// data structure that represents all prefixes in a router's forwarding
// table. Each vertex represents a binary string (the path from the root,
// 0 = left, 1 = right); vertices that are forwarding-table prefixes are
// marked. Any unmarked vertex with no marked descendant is removed, so all
// leaves are marked.
//
// Besides insertion, deletion and the classic bit-by-bit best-matching-
// prefix walk (the "Regular" scheme of §6), the package implements the two
// computations the clue scheme is built from:
//
//   - Claim 1 (§3.1.2): given the receiving router's trie t2 and the set of
//     sender prefixes t1, decide whether any path down from a clue vertex s
//     reaches a prefix of t2 before hitting a prefix of t1 — if not, no
//     longer match can exist and the clue table entry is final.
//   - Condition C1 (§4, Definition 1): the candidate set P(s,R1) of t2
//     prefixes that may still be the BMP given clue s, over which the
//     restricted binary/6-way/Log W searches run.
package trie

import (
	"repro/internal/ip"
	"repro/internal/mem"
)

// Node is a trie vertex. The zero Node is not valid; vertices are created
// by Trie.Insert.
type Node struct {
	prefix   ip.Prefix
	children [2]*Node
	marked   bool
	value    int
}

// Prefix returns the binary string this vertex represents.
func (n *Node) Prefix() ip.Prefix { return n.prefix }

// Marked reports whether the vertex is a forwarding-table prefix.
func (n *Node) Marked() bool { return n.marked }

// Value returns the payload (next-hop index) of a marked vertex.
func (n *Node) Value() int { return n.value }

// Child returns the b-child (b in {0,1}), or nil.
func (n *Node) Child(b byte) *Node { return n.children[b&1] }

// HasChildren reports whether the vertex has any descendants — the Simple
// method's criterion for continuing the search below a clue.
func (n *Node) HasChildren() bool { return n.children[0] != nil || n.children[1] != nil }

// Trie is a binary prefix trie over one address family.
type Trie struct {
	root *Node
	fam  ip.Family
	size int
}

// New returns an empty trie for the given family.
func New(fam ip.Family) *Trie { return &Trie{fam: fam} }

// Family returns the trie's address family.
func (t *Trie) Family() ip.Family { return t.fam }

// Size returns the number of marked prefixes.
func (t *Trie) Size() int { return t.size }

// Root returns the root vertex (the empty string), or nil if the trie is
// empty.
func (t *Trie) Root() *Node { return t.root }

// NodeCount returns the total number of vertices (marked and unmarked).
func (t *Trie) NodeCount() int {
	var count func(*Node) int
	count = func(n *Node) int {
		if n == nil {
			return 0
		}
		return 1 + count(n.children[0]) + count(n.children[1])
	}
	return count(t.root)
}

// Insert adds prefix p with payload v, overwriting the payload if p is
// already present. It panics on a family mismatch, which is always a
// programming error.
//
//cluevet:ctor - trie construction; panics on family mismatch by design
func (t *Trie) Insert(p ip.Prefix, v int) {
	if p.Family() != t.fam {
		panic("trie: family mismatch")
	}
	if t.root == nil {
		t.root = &Node{prefix: ip.PrefixFrom(p.Addr(), 0)}
	}
	n := t.root
	for i := 0; i < p.Len(); i++ {
		b := p.Bit(i)
		if n.children[b] == nil {
			n.children[b] = &Node{prefix: ip.PrefixFrom(p.Addr(), i+1)}
		}
		n = n.children[b]
	}
	if !n.marked {
		n.marked = true
		t.size++
	}
	n.value = v
}

// Delete removes prefix p. It returns false if p was not present. Unmarked
// vertices left without marked descendants are pruned, restoring the §3.1
// invariant that every leaf is marked.
func (t *Trie) Delete(p ip.Prefix) bool {
	if p.Family() != t.fam || t.root == nil {
		return false
	}
	// Record the path so we can prune bottom-up.
	path := make([]*Node, 0, p.Len()+1)
	n := t.root
	path = append(path, n)
	for i := 0; i < p.Len(); i++ {
		n = n.children[p.Bit(i)]
		if n == nil {
			return false
		}
		path = append(path, n)
	}
	if !n.marked {
		return false
	}
	n.marked = false
	t.size--
	// Prune unmarked leaves along the path.
	for i := len(path) - 1; i > 0; i-- {
		v := path[i]
		if v.marked || v.HasChildren() {
			break
		}
		parent := path[i-1]
		b := p.Bit(i - 1)
		parent.children[b] = nil
	}
	if !t.root.marked && !t.root.HasChildren() {
		t.root = nil
	}
	return true
}

// Find returns the vertex for prefix p, or nil if that vertex does not
// exist in the trie (the clue table's "s not in R2's trie" case).
func (t *Trie) Find(p ip.Prefix) *Node {
	if p.Family() != t.fam {
		return nil
	}
	n := t.root
	for i := 0; n != nil && i < p.Len(); i++ {
		n = n.children[p.Bit(i)]
	}
	return n
}

// Contains reports whether p is a marked prefix of the trie.
func (t *Trie) Contains(p ip.Prefix) bool {
	n := t.Find(p)
	return n != nil && n.marked
}

// Get returns the payload of marked prefix p.
func (t *Trie) Get(p ip.Prefix) (int, bool) {
	n := t.Find(p)
	if n == nil || !n.marked {
		return 0, false
	}
	return n.value, true
}

// Lookup performs the classic bit-by-bit best-matching-prefix walk from the
// root ("Regular" in the paper's tables). Every vertex visited costs one
// memory reference on c. It returns the BMP, its payload and whether any
// prefix matched.
//
//cluevet:hotpath
func (t *Trie) Lookup(a ip.Addr, c *mem.Counter) (ip.Prefix, int, bool) {
	return t.LookupFrom(t.root, a, c)
}

// LookupFrom performs the bit-by-bit walk starting at vertex start (which
// must lie on a's path, i.e. start's prefix must contain a); it is the
// "continue the search from the clue" primitive of §3. A nil start returns
// no match at zero cost. The walk records one reference per vertex visited,
// including start itself.
func (t *Trie) LookupFrom(start *Node, a ip.Addr, c *mem.Counter) (ip.Prefix, int, bool) {
	var best *Node
	n := start
	for n != nil {
		c.Add(1)
		if n.marked {
			best = n
		}
		if n.prefix.Len() >= t.fam.Width() {
			break
		}
		n = n.children[a.Bit(n.prefix.Len())]
	}
	if best == nil {
		return ip.Prefix{}, 0, false
	}
	return best.prefix, best.value, true
}

// BMPOf returns the longest marked ancestor-or-self of prefix p — the
// paper's "least ancestor of s in the trie which is also a prefix", used to
// fill the FD field of a clue entry. No cost is recorded: this runs at
// table-construction time, not on the forwarding path.
func (t *Trie) BMPOf(p ip.Prefix) (ip.Prefix, int, bool) {
	var best *Node
	n := t.root
	for i := 0; n != nil; i++ {
		if n.marked {
			best = n
		}
		if i >= p.Len() {
			break
		}
		n = n.children[p.Bit(i)]
	}
	if best == nil {
		return ip.Prefix{}, 0, false
	}
	return best.prefix, best.value, true
}

// Walk visits every marked prefix in lexicographic (DFS, 0 before 1) order
// until fn returns false.
func (t *Trie) Walk(fn func(p ip.Prefix, v int) bool) {
	var walk func(*Node) bool
	walk = func(n *Node) bool {
		if n == nil {
			return true
		}
		if n.marked && !fn(n.prefix, n.value) {
			return false
		}
		return walk(n.children[0]) && walk(n.children[1])
	}
	walk(t.root)
}

// Prefixes returns all marked prefixes in lexicographic order.
func (t *Trie) Prefixes() []ip.Prefix {
	out := make([]ip.Prefix, 0, t.size)
	t.Walk(func(p ip.Prefix, _ int) bool {
		out = append(out, p)
		return true
	})
	return out
}

// Candidates computes the candidate set P(s, R1) of Definition 1 (§4): all
// marked vertices p strictly below s such that no vertex on the path from s
// to p (excluding s, including p) is a sender prefix. inSender reports
// whether a binary string is a prefix of the sending router's table.
//
// Claim 1 holds for s exactly when the returned set is empty.
func (t *Trie) Candidates(s *Node, inSender func(ip.Prefix) bool) []*Node {
	var out []*Node
	if s == nil {
		return out
	}
	var dfs func(*Node)
	dfs = func(n *Node) {
		if n == nil {
			return
		}
		if inSender(n.prefix) {
			// A sender prefix is met before (or at the same time as) any
			// deeper receiver prefix: this whole branch is blocked, because
			// the sender would have reported the longer clue itself.
			return
		}
		if n.marked {
			out = append(out, n)
			// Receiver prefixes do not block deeper candidates (Definition
			// 1 only excludes sender prefixes from the path).
		}
		dfs(n.children[0])
		dfs(n.children[1])
	}
	dfs(s.children[0])
	dfs(s.children[1])
	return out
}

// Claim1Holds reports whether Claim 1 of §3.1.2 holds for clue vertex s:
// on every path going down from s, a sender prefix is encountered before or
// at the same time as the first receiver prefix. When it holds, the clue
// table entry alone decides the packet (Ptr := Empty).
func (t *Trie) Claim1Holds(s *Node, inSender func(ip.Prefix) bool) bool {
	if s == nil {
		return true
	}
	holds := true
	var dfs func(*Node)
	dfs = func(n *Node) {
		if n == nil || !holds || inSender(n.prefix) {
			return
		}
		if n.marked {
			holds = false
			return
		}
		dfs(n.children[0])
		dfs(n.children[1])
	}
	dfs(s.children[0])
	dfs(s.children[1])
	return holds
}

// MarkedBelow reports whether any marked vertex exists strictly below s.
func (t *Trie) MarkedBelow(s *Node) bool {
	found := false
	var dfs func(*Node)
	dfs = func(n *Node) {
		if n == nil || found {
			return
		}
		if n.marked {
			found = true
			return
		}
		dfs(n.children[0])
		dfs(n.children[1])
	}
	if s != nil {
		dfs(s.children[0])
		dfs(s.children[1])
	}
	return found
}

// Clone returns a deep copy of the trie. Clue-table precomputation snapshots
// a neighbor's trie with it so that later route changes do not corrupt
// precomputed entries.
func (t *Trie) Clone() *Trie {
	var cp func(*Node) *Node
	cp = func(n *Node) *Node {
		if n == nil {
			return nil
		}
		return &Node{
			prefix:   n.prefix,
			marked:   n.marked,
			value:    n.value,
			children: [2]*Node{cp(n.children[0]), cp(n.children[1])},
		}
	}
	return &Trie{root: cp(t.root), fam: t.fam, size: t.size}
}
