package trie

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ip"
	"repro/internal/mem"
)

// naiveBMP is the reference implementation: longest prefix in set containing a.
func naiveBMP(set []ip.Prefix, a ip.Addr) (ip.Prefix, bool) {
	best, ok := ip.Prefix{}, false
	for _, p := range set {
		if p.Contains(a) && (!ok || p.Len() > best.Len()) {
			best, ok = p, true
		}
	}
	return best, ok
}

// randomPrefixes generates n random IPv4 prefixes clustered enough to nest.
func randomPrefixes(rng *rand.Rand, n int) []ip.Prefix {
	out := make([]ip.Prefix, 0, n)
	for len(out) < n {
		// Small address space so prefixes overlap and nest frequently.
		a := ip.AddrFrom32(rng.Uint32() & 0x0F0F00FF)
		l := rng.Intn(33)
		out = append(out, ip.PrefixFrom(a, l))
	}
	return out
}

func buildTrie(set []ip.Prefix) *Trie {
	t := New(ip.IPv4)
	for i, p := range set {
		t.Insert(p, i)
	}
	return t
}

func TestInsertLookupBasic(t *testing.T) {
	tr := New(ip.IPv4)
	tr.Insert(ip.MustParsePrefix("10.0.0.0/8"), 1)
	tr.Insert(ip.MustParsePrefix("10.1.0.0/16"), 2)
	tr.Insert(ip.MustParsePrefix("10.1.2.0/24"), 3)

	var c mem.Counter
	p, v, ok := tr.Lookup(ip.MustParseAddr("10.1.2.3"), &c)
	if !ok || v != 3 || p.String() != "10.1.2.0/24" {
		t.Fatalf("Lookup = %v %d %v", p, v, ok)
	}
	// Bit-by-bit walk visits root + 24 vertices.
	if c.Count() != 25 {
		t.Errorf("Regular walk cost = %d, want 25", c.Count())
	}
	if _, _, ok := tr.Lookup(ip.MustParseAddr("11.0.0.0"), nil); ok {
		t.Error("11.0.0.0 should not match")
	}
	if p, v, ok = tr.Lookup(ip.MustParseAddr("10.200.0.1"), nil); !ok || v != 1 {
		t.Errorf("10.200.0.1 -> %v %d %v, want 10.0.0.0/8", p, v, ok)
	}
}

func TestInsertOverwrite(t *testing.T) {
	tr := New(ip.IPv4)
	p := ip.MustParsePrefix("10.0.0.0/8")
	tr.Insert(p, 1)
	tr.Insert(p, 9)
	if tr.Size() != 1 {
		t.Errorf("Size = %d, want 1", tr.Size())
	}
	if v, ok := tr.Get(p); !ok || v != 9 {
		t.Errorf("Get = %d %v, want 9", v, ok)
	}
}

func TestDefaultRoute(t *testing.T) {
	tr := New(ip.IPv4)
	tr.Insert(ip.MustParsePrefix("0.0.0.0/0"), 7)
	if p, v, ok := tr.Lookup(ip.MustParseAddr("203.0.113.9"), nil); !ok || v != 7 || p.Len() != 0 {
		t.Errorf("default route lookup = %v %d %v", p, v, ok)
	}
}

func TestDeleteAndPrune(t *testing.T) {
	tr := New(ip.IPv4)
	tr.Insert(ip.MustParsePrefix("10.0.0.0/8"), 1)
	tr.Insert(ip.MustParsePrefix("10.1.2.0/24"), 3)
	if !tr.Delete(ip.MustParsePrefix("10.1.2.0/24")) {
		t.Fatal("Delete returned false")
	}
	if tr.Delete(ip.MustParsePrefix("10.1.2.0/24")) {
		t.Fatal("second Delete should return false")
	}
	if tr.Size() != 1 {
		t.Errorf("Size = %d, want 1", tr.Size())
	}
	// After pruning, the only path is the /8 one: 9 vertices.
	if got := tr.NodeCount(); got != 9 {
		t.Errorf("NodeCount = %d, want 9 (pruning failed)", got)
	}
	if _, _, ok := tr.Lookup(ip.MustParseAddr("10.1.2.3"), nil); !ok {
		t.Error("10/8 should still match after delete")
	}
	tr.Delete(ip.MustParsePrefix("10.0.0.0/8"))
	if tr.Root() != nil || tr.Size() != 0 {
		t.Error("trie should be empty after deleting everything")
	}
	if tr.Delete(ip.MustParsePrefix("10.0.0.0/8")) {
		t.Error("Delete on empty trie should return false")
	}
}

// checkInvariant verifies the §3.1 structural invariant: every leaf is
// marked (no unmarked vertex without marked descendants survives).
func checkInvariant(t *testing.T, tr *Trie) {
	t.Helper()
	var walk func(n *Node) bool // returns "has marked in subtree"
	walk = func(n *Node) bool {
		if n == nil {
			return false
		}
		hasMarked := walk(n.Child(0)) || walk(n.Child(1)) || n.Marked()
		if !hasMarked {
			t.Fatalf("invariant violated: vertex %v has no marked descendant", n.Prefix())
		}
		return hasMarked
	}
	if tr.Root() != nil {
		walk(tr.Root())
	}
}

func TestQuickLookupMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		set := randomPrefixes(rng, 60)
		tr := buildTrie(set)
		checkInvariant(t, tr)
		for i := 0; i < 200; i++ {
			a := ip.AddrFrom32(rng.Uint32() & 0x0F0F00FF)
			want, wantOK := naiveBMP(set, a)
			got, _, gotOK := tr.Lookup(a, nil)
			if gotOK != wantOK || (gotOK && got != want) {
				t.Fatalf("trial %d: Lookup(%v) = %v/%v, want %v/%v", trial, a, got, gotOK, want, wantOK)
			}
		}
	}
}

func TestQuickDeleteMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		set := randomPrefixes(rng, 40)
		tr := buildTrie(set)
		// Delete a random half (dedup-aware: Delete returns false on dup).
		alive := map[ip.Prefix]bool{}
		for _, p := range set {
			alive[p] = true
		}
		for i := 0; i < len(set)/2; i++ {
			p := set[rng.Intn(len(set))]
			if alive[p] {
				if !tr.Delete(p) {
					t.Fatalf("Delete(%v) = false for live prefix", p)
				}
				alive[p] = false
			}
		}
		checkInvariant(t, tr)
		var rest []ip.Prefix
		for p, ok := range alive {
			if ok {
				rest = append(rest, p)
			}
		}
		if tr.Size() != len(rest) {
			t.Fatalf("Size = %d, want %d", tr.Size(), len(rest))
		}
		for i := 0; i < 100; i++ {
			a := ip.AddrFrom32(rng.Uint32() & 0x0F0F00FF)
			want, wantOK := naiveBMP(rest, a)
			got, _, gotOK := tr.Lookup(a, nil)
			if gotOK != wantOK || (gotOK && got != want) {
				t.Fatalf("after delete: Lookup(%v) = %v/%v, want %v/%v", a, got, gotOK, want, wantOK)
			}
		}
	}
}

// quick.Check property: any seeded random build/lookup scenario agrees
// with the naive reference.
func TestQuickCheckLookupProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		set := randomPrefixes(rng, 30)
		tr := buildTrie(set)
		for i := 0; i < 50; i++ {
			a := ip.AddrFrom32(rng.Uint32() & 0x0F0F00FF)
			want, wantOK := naiveBMP(set, a)
			got, _, gotOK := tr.Lookup(a, nil)
			if gotOK != wantOK || (gotOK && got != want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// quick.Check property: Claim 1 holds iff the candidate set is empty, for
// arbitrary seeded sender/receiver pairs and every sender clue.
func TestQuickCheckClaim1Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		t1set := randomPrefixes(rng, 25)
		t2set := randomPrefixes(rng, 25)
		copy(t2set[:12], t1set[:12])
		t2 := buildTrie(t2set)
		inT1 := map[ip.Prefix]bool{}
		for _, p := range t1set {
			inT1[p] = true
		}
		isSender := func(p ip.Prefix) bool { return inT1[p] }
		for _, s := range t1set {
			node := t2.Find(s)
			if node == nil {
				continue
			}
			if t2.Claim1Holds(node, isSender) != (len(t2.Candidates(node, isSender)) == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBMPOf(t *testing.T) {
	tr := New(ip.IPv4)
	tr.Insert(ip.MustParsePrefix("10.0.0.0/8"), 1)
	tr.Insert(ip.MustParsePrefix("10.1.0.0/16"), 2)
	// BMP of a longer prefix string.
	p, v, ok := tr.BMPOf(ip.MustParsePrefix("10.1.2.0/24"))
	if !ok || v != 2 || p.String() != "10.1.0.0/16" {
		t.Errorf("BMPOf(/24) = %v %d %v", p, v, ok)
	}
	// BMP of a marked prefix is itself.
	p, _, _ = tr.BMPOf(ip.MustParsePrefix("10.1.0.0/16"))
	if p.String() != "10.1.0.0/16" {
		t.Errorf("BMPOf(self) = %v", p)
	}
	// No ancestor.
	if _, _, ok := tr.BMPOf(ip.MustParsePrefix("11.0.0.0/8")); ok {
		t.Error("BMPOf(11/8) should fail")
	}
}

func TestFindAndMarkedBelow(t *testing.T) {
	tr := New(ip.IPv4)
	tr.Insert(ip.MustParsePrefix("10.1.0.0/16"), 1)
	if tr.Find(ip.MustParsePrefix("10.1.0.0/16")) == nil {
		t.Fatal("Find(marked) = nil")
	}
	n := tr.Find(ip.MustParsePrefix("10.0.0.0/8")) // unmarked internal vertex
	if n == nil || n.Marked() {
		t.Fatalf("Find(internal) = %v", n)
	}
	if !tr.MarkedBelow(n) {
		t.Error("MarkedBelow(10/8) should be true")
	}
	leaf := tr.Find(ip.MustParsePrefix("10.1.0.0/16"))
	if tr.MarkedBelow(leaf) {
		t.Error("MarkedBelow(leaf) should be false")
	}
	if tr.Find(ip.MustParsePrefix("11.0.0.0/8")) != nil {
		t.Error("Find(absent) should be nil")
	}
	if tr.MarkedBelow(nil) {
		t.Error("MarkedBelow(nil) should be false")
	}
}

func TestWalkOrderAndPrefixes(t *testing.T) {
	tr := New(ip.IPv4)
	in := []string{"128.0.0.0/1", "0.0.0.0/0", "10.0.0.0/8", "10.128.0.0/9"}
	for i, s := range in {
		tr.Insert(ip.MustParsePrefix(s), i)
	}
	got := tr.Prefixes()
	want := []string{"0.0.0.0/0", "10.0.0.0/8", "10.128.0.0/9", "128.0.0.0/1"}
	if len(got) != len(want) {
		t.Fatalf("Prefixes len = %d", len(got))
	}
	for i := range want {
		if got[i].String() != want[i] {
			t.Errorf("Prefixes[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Walk early termination.
	count := 0
	tr.Walk(func(ip.Prefix, int) bool { count++; return count < 2 })
	if count != 2 {
		t.Errorf("Walk visited %d, want 2", count)
	}
}

// brute-force reference for Candidates / Claim 1.
func naiveCandidates(t2 []ip.Prefix, s ip.Prefix, t1 []ip.Prefix) map[ip.Prefix]bool {
	inT1 := map[ip.Prefix]bool{}
	for _, p := range t1 {
		inT1[p] = true
	}
	out := map[ip.Prefix]bool{}
	for _, p := range t2 {
		if p.Len() <= s.Len() || !s.IsAncestorOf(p) {
			continue
		}
		blocked := false
		for l := s.Len() + 1; l <= p.Len(); l++ {
			if inT1[p.Truncate(l)] {
				blocked = true
				break
			}
		}
		if !blocked {
			out[p] = true
		}
	}
	return out
}

func TestQuickCandidatesMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		t1set := randomPrefixes(rng, 30)
		t2set := randomPrefixes(rng, 30)
		// Make the tables overlap (the paper's premise).
		copy(t2set[:15], t1set[:15])
		t2 := buildTrie(t2set)
		inT1 := map[ip.Prefix]bool{}
		for _, p := range t1set {
			inT1[p] = true
		}
		isSender := func(p ip.Prefix) bool { return inT1[p] }
		for _, s := range t1set {
			node := t2.Find(s)
			if node == nil {
				continue
			}
			want := naiveCandidates(t2set, s, t1set)
			got := t2.Candidates(node, isSender)
			if len(got) != len(want) {
				t.Fatalf("trial %d clue %v: |Candidates| = %d, want %d", trial, s, len(got), len(want))
			}
			for _, n := range got {
				if !want[n.Prefix()] {
					t.Fatalf("trial %d clue %v: unexpected candidate %v", trial, s, n.Prefix())
				}
			}
			if t2.Claim1Holds(node, isSender) != (len(want) == 0) {
				t.Fatalf("trial %d clue %v: Claim1Holds disagrees with candidate set", trial, s)
			}
		}
	}
}

func TestLookupFromClueVertex(t *testing.T) {
	// t2 has a longer match below the clue.
	t2 := New(ip.IPv4)
	t2.Insert(ip.MustParsePrefix("10.0.0.0/8"), 1)
	t2.Insert(ip.MustParsePrefix("10.1.0.0/16"), 2)
	t2.Insert(ip.MustParsePrefix("10.1.2.0/24"), 3)
	clue := t2.Find(ip.MustParsePrefix("10.1.0.0/16"))
	var c mem.Counter
	p, v, ok := t2.LookupFrom(clue, ip.MustParseAddr("10.1.2.200"), &c)
	if !ok || v != 3 || p.Len() != 24 {
		t.Fatalf("LookupFrom = %v %d %v", p, v, ok)
	}
	// Visits vertices at depths 16..24: 9 references, versus 25 from the root.
	if c.Count() != 9 {
		t.Errorf("restricted walk cost = %d, want 9", c.Count())
	}
	// nil start: no match, no cost.
	var c2 mem.Counter
	if _, _, ok := t2.LookupFrom(nil, ip.MustParseAddr("10.1.2.200"), &c2); ok || c2.Count() != 0 {
		t.Error("LookupFrom(nil) should be a free miss")
	}
}

func TestClone(t *testing.T) {
	tr := New(ip.IPv4)
	tr.Insert(ip.MustParsePrefix("10.0.0.0/8"), 1)
	cp := tr.Clone()
	tr.Insert(ip.MustParsePrefix("10.1.0.0/16"), 2)
	tr.Delete(ip.MustParsePrefix("10.0.0.0/8"))
	if cp.Size() != 1 || !cp.Contains(ip.MustParsePrefix("10.0.0.0/8")) {
		t.Error("Clone shares state with original")
	}
	if cp.Contains(ip.MustParsePrefix("10.1.0.0/16")) {
		t.Error("Clone sees post-clone inserts")
	}
}

func TestFamilyMismatch(t *testing.T) {
	tr := New(ip.IPv4)
	defer func() {
		if recover() == nil {
			t.Error("Insert with wrong family should panic")
		}
	}()
	tr.Insert(ip.MustParsePrefix("2001:db8::/32"), 1)
}

func TestIPv6Trie(t *testing.T) {
	tr := New(ip.IPv6)
	tr.Insert(ip.MustParsePrefix("2001:db8::/32"), 1)
	tr.Insert(ip.MustParsePrefix("2001:db8:1::/48"), 2)
	p, v, ok := tr.Lookup(ip.MustParseAddr("2001:db8:1::42"), nil)
	if !ok || v != 2 || p.Len() != 48 {
		t.Errorf("v6 Lookup = %v %d %v", p, v, ok)
	}
	if _, _, ok := tr.Lookup(ip.MustParseAddr("2001:db9::1"), nil); ok {
		t.Error("v6 miss expected")
	}
}
