// Micro-benchmarks (classic testing.B, meaningful with -benchmem): the
// engines' raw lookup throughput on a full-scale table, clue-table
// processing, trie operations and the wire format.
package clueroute_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/header"
	"repro/internal/ip"
	"repro/internal/lookup"
	"repro/internal/synth"
	"repro/internal/trie"
)

// microFixture builds one full-scale receiver and a warm Advance table.
func microFixture(b *testing.B) (st, rt *trie.Trie, engines []lookup.ClueEngine, dests []ip.Addr, clues []int) {
	b.Helper()
	routers := benchFixture()
	sender, receiver := routers["AT&T-1"], routers["AT&T-2"]
	st, rt = sender.Trie(), receiver.Trie()
	engines = lookup.All(rt)
	w := synth.NewWorkload(17, sender)
	for len(dests) < 8192 {
		d := w.Next()
		if c, _, ok := st.Lookup(d, nil); ok {
			dests = append(dests, d)
			clues = append(clues, c.Clue())
		}
	}
	return st, rt, engines, dests, clues
}

func BenchmarkEngineLookup(b *testing.B) {
	_, rt, engines, dests, _ := microFixture(b)
	engines = append(engines, lookup.NewMultibit(rt, 8))
	for _, e := range engines {
		b.Run(e.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.Lookup(dests[i%len(dests)], nil)
			}
		})
	}
}

func BenchmarkClueProcess(b *testing.B) {
	st, rt, engines, dests, clues := microFixture(b)
	for _, e := range engines {
		for _, m := range []core.Method{core.Simple, core.Advance} {
			tab := core.MustNewTable(core.Config{Method: m, Engine: e, Local: rt, Sender: st.Contains, Learn: true})
			for i := range dests {
				tab.Process(dests[i], clues[i], nil) // warm
			}
			b.Run(m.String()+"/"+e.Name(), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					j := i % len(dests)
					tab.Process(dests[j], clues[j], nil)
				}
			})
		}
	}
}

func BenchmarkTrieInsertDelete(b *testing.B) {
	routers := benchFixture()
	ps := routers["Paix"].Prefixes()
	b.Run("insert", func(b *testing.B) {
		b.ReportAllocs()
		tr := trie.New(ip.IPv4)
		for i := 0; i < b.N; i++ {
			tr.Insert(ps[i%len(ps)], i)
		}
	})
	b.Run("delete", func(b *testing.B) {
		tr := trie.New(ip.IPv4)
		for i, p := range ps {
			tr.Insert(p, i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := ps[i%len(ps)]
			if tr.Delete(p) {
				tr.Insert(p, i)
			} else {
				b.Fatal("prefix vanished")
			}
		}
	})
}

func BenchmarkHeaderMarshalParse(b *testing.B) {
	h := &header.IPv4{
		TTL: 64, Protocol: 17,
		Src:  ip.MustParseAddr("10.0.0.1"),
		Dst:  ip.MustParseAddr("203.0.113.9"),
		Clue: &header.ClueOption{Len: 24},
	}
	buf, err := h.Marshal(512)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("marshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := h.Marshal(512); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := header.ParseIPv4(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkClaim1Evaluation(b *testing.B) {
	st, rt, _, _, _ := microFixture(b)
	clues := benchFixture()["AT&T-1"].Prefixes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := clues[i%len(clues)]
		rt.Claim1Holds(rt.Find(c), st.Contains)
	}
}
